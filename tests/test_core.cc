/** Unit tests: in-order core semantics and stall attribution. */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "script_workload.hh"
#include "system/system.hh"

namespace wastesim
{

namespace
{

/** A scriptable fake L1 for driving the core directly. */
class FakeL1 : public L1Cache
{
  public:
    explicit FakeL1(EventQueue &eq) : eq_(eq) {}

    void
    load(Addr, LoadCallback done) override
    {
        ++loads;
        if (loadDelay == 0) {
            MemTiming t;
            t.immediate = true;
            t.issued = t.tEnd = eq_.now();
            done(t);
            return;
        }
        const Tick issued = eq_.now();
        eq_.schedule(loadDelay, [this, issued, done = std::move(done)] {
            MemTiming t;
            t.usedMemory = memory;
            t.issued = issued;
            t.tMcArrive = issued + loadDelay / 4;
            t.tMemDone = issued + loadDelay / 2;
            t.tEnd = eq_.now();
            done(t);
        });
    }

    void
    store(Addr, PlainCallback accepted) override
    {
        ++stores;
        if (storeDelay == 0)
            accepted();
        else
            eq_.schedule(storeDelay, std::move(accepted));
    }

    void
    drainWrites(PlainCallback done) override
    {
        ++drains;
        done();
    }

    void
    barrierRelease(const std::vector<RegionId> &regions) override
    {
        lastInvRegions = regions;
        ++releases;
    }

    void handle(Message) override {}

    std::uint64_t demandLoads() const override { return loads; }
    std::uint64_t demandStores() const override { return stores; }

    EventQueue &eq_;
    Tick loadDelay = 0;
    Tick storeDelay = 0;
    bool memory = false;
    unsigned loads = 0, stores = 0, drains = 0, releases = 0;
    std::vector<RegionId> lastInvRegions;
};

struct CoreHarness
{
    EventQueue eq;
    FakeL1 l1{eq};
    Barrier barrier{1}; // single-core barrier releases immediately
    Trace trace;
    std::vector<BarrierInfo> infos;
    bool done = false;

    std::unique_ptr<Core> core;

    void
    start()
    {
        Core::Hooks hooks;
        hooks.onDone = [this](CoreId) { done = true; };
        hooks.barrierInfo = [this](unsigned i) -> const BarrierInfo & {
            return infos.at(i);
        };
        core = std::make_unique<Core>(0, eq, l1, barrier, trace,
                                      std::move(hooks));
        core->start();
        eq.run();
    }
};

} // namespace

TEST(Core, WorkAccumulatesBusy)
{
    CoreHarness h;
    h.trace.push_back(Op{Op::Type::Work, 0, 50});
    h.trace.push_back(Op{Op::Type::Work, 0, 25});
    h.start();
    EXPECT_TRUE(h.done);
    EXPECT_DOUBLE_EQ(h.core->time().busy, 75.0);
    EXPECT_EQ(h.eq.now(), 75u);
}

TEST(Core, L1HitIsOneBusyCycle)
{
    CoreHarness h;
    h.trace.push_back(Op{Op::Type::Load, 0x1000, 0});
    h.start();
    EXPECT_DOUBLE_EQ(h.core->time().busy, 1.0);
    EXPECT_DOUBLE_EQ(h.core->time().onChip, 0.0);
}

TEST(Core, OnChipMissAttributedToOnChip)
{
    CoreHarness h;
    h.l1.loadDelay = 40;
    h.trace.push_back(Op{Op::Type::Load, 0x1000, 0});
    h.start();
    EXPECT_DOUBLE_EQ(h.core->time().onChip, 40.0);
    EXPECT_DOUBLE_EQ(h.core->time().mem, 0.0);
}

TEST(Core, MemoryMissSplitsLegs)
{
    CoreHarness h;
    h.l1.loadDelay = 100;
    h.l1.memory = true;
    h.trace.push_back(Op{Op::Type::Load, 0x1000, 0});
    h.start();
    const TimeBreakdown &t = h.core->time();
    EXPECT_DOUBLE_EQ(t.toMc, 25.0);   // issued -> MC arrival
    EXPECT_DOUBLE_EQ(t.mem, 25.0);    // MC -> DRAM done
    EXPECT_DOUBLE_EQ(t.fromMc, 50.0); // DRAM done -> core
    EXPECT_DOUBLE_EQ(t.onChip, 0.0);
}

TEST(Core, StoreStallCountsAsOnChip)
{
    CoreHarness h;
    h.l1.storeDelay = 30;
    h.trace.push_back(Op{Op::Type::Store, 0x1000, 0});
    h.start();
    EXPECT_DOUBLE_EQ(h.core->time().onChip, 30.0);
    EXPECT_DOUBLE_EQ(h.core->time().busy, 1.0);
}

TEST(Core, BarrierDrainsAndReleases)
{
    CoreHarness h;
    h.infos.push_back(BarrierInfo{{7, 9}});
    h.trace.push_back(Op{Op::Type::Barrier, 0, 0});
    h.start();
    EXPECT_EQ(h.l1.drains, 1u);
    EXPECT_EQ(h.l1.releases, 1u);
    EXPECT_EQ(h.l1.lastInvRegions, (std::vector<RegionId>{7, 9}));
}

TEST(Core, SyncTimeMeasuredAcrossCores)
{
    // Two cores; one arrives late: the early one accumulates Sync.
    EventQueue eq;
    FakeL1 l1a(eq), l1b(eq);
    Barrier barrier(2);
    Trace ta, tb;
    ta.push_back(Op{Op::Type::Barrier, 0, 0});
    tb.push_back(Op{Op::Type::Work, 0, 200});
    tb.push_back(Op{Op::Type::Barrier, 0, 0});
    std::vector<BarrierInfo> infos{BarrierInfo{}};

    Core::Hooks hooks;
    hooks.barrierInfo = [&](unsigned i) -> const BarrierInfo & {
        return infos.at(i);
    };
    Core a(0, eq, l1a, barrier, ta, hooks);
    Core b(1, eq, l1b, barrier, tb, hooks);
    a.start();
    b.start();
    eq.run();
    EXPECT_TRUE(a.done() && b.done());
    EXPECT_DOUBLE_EQ(a.time().sync, 200.0);
    EXPECT_DOUBLE_EQ(b.time().sync, 0.0);
}

TEST(Core, EpochHookFires)
{
    EventQueue eq;
    FakeL1 l1(eq);
    Barrier barrier(1);
    Trace t;
    t.push_back(Op{Op::Type::Epoch, 0, 0});
    bool epoch = false;
    Core::Hooks hooks;
    hooks.onEpoch = [&] { epoch = true; };
    hooks.barrierInfo = [](unsigned) -> const BarrierInfo & {
        static BarrierInfo bi;
        return bi;
    };
    Core c(0, eq, l1, barrier, t, std::move(hooks));
    c.start();
    eq.run();
    EXPECT_TRUE(epoch);
    EXPECT_TRUE(c.done());
}

TEST(Core, TimeResetClearsBreakdown)
{
    CoreHarness h;
    h.trace.push_back(Op{Op::Type::Work, 0, 10});
    h.start();
    EXPECT_GT(h.core->time().total(), 0.0);
    h.core->resetTime();
    EXPECT_DOUBLE_EQ(h.core->time().total(), 0.0);
}

} // namespace wastesim
