/** Unit tests: the memory waste FSM with (address, id) refcounting
 *  (Fig. 4.3). */

#include <gtest/gtest.h>

#include "profile/mem_profiler.hh"

namespace wastesim
{

TEST(MemProfiler, UsedOnLoad)
{
    MemProfiler p;
    const InstId i = p.create(100, false);
    p.addRef(i);
    p.used(i);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Used], 1.0);
}

TEST(MemProfiler, FetchWhenAddressPresentInL2)
{
    MemProfiler p;
    p.create(100, true);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Fetch], 1.0);
}

TEST(MemProfiler, StoreClassifiesAllInstancesOfAddress)
{
    MemProfiler p;
    const InstId a = p.create(100, false);
    const InstId b = p.create(100, false); // second fetch, same addr
    p.addRef(a);
    p.addRef(b);
    p.storeAddr(100);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Write], 2.0);
}

TEST(MemProfiler, EvictWhenLastCopyDies)
{
    MemProfiler p;
    const InstId i = p.create(100, false);
    p.addRef(i);
    p.addRef(i); // two on-chip copies (L1 + L2)
    p.dropRef(i, false);
    {
        const auto c = p.counts();
        EXPECT_EQ(c[WasteCat::Unclassified] + c[WasteCat::Unevicted],
                  1.0); // still open: one copy lives
    }
    p.dropRef(i, false);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Evict], 1.0);
}

TEST(MemProfiler, InvalidateWhenLastCopyInvalidated)
{
    MemProfiler p;
    const InstId i = p.create(100, false);
    p.addRef(i);
    p.dropRef(i, true);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Invalidate], 1.0);
}

TEST(MemProfiler, UsedSticksThroughDrop)
{
    MemProfiler p;
    const InstId i = p.create(100, false);
    p.addRef(i);
    p.used(i);
    p.dropRef(i, false);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Used], 1.0);
    EXPECT_EQ(c[WasteCat::Evict], 0.0);
}

TEST(MemProfiler, UnevictedAtEnd)
{
    MemProfiler p;
    const InstId i = p.create(100, false);
    p.addRef(i);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Unevicted], 1.0);
}

TEST(MemProfiler, ExcessCounted)
{
    MemProfiler p;
    p.excess(12);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Excess], 12.0);
}

TEST(MemProfiler, EpochExcludesWarmupAndExcess)
{
    MemProfiler p;
    p.excess(5);
    const InstId warm = p.create(100, false);
    p.addRef(warm);
    p.used(warm);
    p.markEpoch();
    p.excess(2);
    const InstId hot = p.create(200, false);
    p.addRef(hot);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Used], 0.0);
    EXPECT_EQ(c[WasteCat::Unevicted], 1.0);
    EXPECT_EQ(c[WasteCat::Excess], 2.0);
}

TEST(MemProfiler, StoreOnlyAffectsOpenInstances)
{
    MemProfiler p;
    const InstId i = p.create(100, false);
    p.addRef(i);
    p.used(i);
    p.storeAddr(100);
    const auto c = p.finalize();
    EXPECT_EQ(c[WasteCat::Used], 1.0);
}

TEST(MemProfiler, IgnoresInvalidInstId)
{
    MemProfiler p;
    p.addRef(invalidInst);
    p.used(invalidInst);
    p.dropRef(invalidInst, false);
    EXPECT_EQ(p.finalize().total(), 0.0);
}

TEST(MemProfilerDeath, DropWithoutRefPanics)
{
    MemProfiler p;
    const InstId i = p.create(100, false);
    EXPECT_DEATH(p.dropRef(i, false), "zero refs");
}

} // namespace wastesim
