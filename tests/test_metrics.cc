/** Unit tests: the metric registry, the schema-driven sweep-cache
 *  serialization adapter and the JSON emitters (src/metrics/). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "fuzz/invariants.hh"
#include "golden_util.hh"
#include "metrics/figure.hh"
#include "metrics/metric_set.hh"
#include "metrics/run_result_schema.hh"
#include "profile/energy.hh"
#include "system/runner.hh"
#include "system/sweep_engine.hh"
#include "trace/synthetic.hh"

namespace wastesim
{

namespace
{

using testutil::fileBytes;
using testutil::goldenPath;

/** A RunResult with a distinct value in every registered field. */
RunResult
populatedResult()
{
    RunResult r;
    r.protocol = "MESI";
    r.benchmark = "toy";
    double v = 1.25;
    for (const RunResultField &f : runResultFields()) {
        f.setF(r, v);
        v += 1.0;
    }
    return r;
}

} // namespace

TEST(MetricSet, PreservesOrderAndOverwritesInPlace)
{
    MetricSet ms;
    ms.set("b.second", "words", 2);
    ms.set("a.first", "flit-hops", 1);
    ms.set("b.second", "words", 20); // overwrite, keep position

    ASSERT_EQ(ms.size(), 2u);
    EXPECT_EQ(ms.begin()->path, "b.second");
    EXPECT_DOUBLE_EQ(ms.value("b.second"), 20);
    EXPECT_DOUBLE_EQ(ms.value("a.first"), 1);
    EXPECT_TRUE(ms.has("a.first"));
    EXPECT_FALSE(ms.has("missing"));
    EXPECT_EQ(ms.find("missing"), nullptr);
}

TEST(Schema, EveryFieldHasUniquePathAndRoundTrips)
{
    std::set<std::string> paths;
    for (const RunResultField &f : runResultFields())
        EXPECT_TRUE(paths.insert(f.path).second)
            << "duplicate path " << f.path;

    // Writing a fully populated result and reading it back must
    // reproduce every serialized field exactly.
    const RunResult ref = populatedResult();
    std::ostringstream os;
    os.precision(17);
    writeRunResultBlock(os, ref);

    std::istringstream is(os.str());
    RunResult back;
    ASSERT_TRUE(readRunResultBlock(is, back));
    EXPECT_EQ(back.protocol, ref.protocol);
    EXPECT_EQ(back.benchmark, ref.benchmark);
    for (const RunResultField &f : runResultFields()) {
        if (f.line < 0)
            continue; // deliberately unserialized (eventsExecuted)
        EXPECT_DOUBLE_EQ(f.getF(back), f.getF(ref)) << f.path;
    }
}

TEST(Schema, U64FieldsSerializeExactly)
{
    RunResult r;
    r.protocol = "P";
    r.benchmark = "B";
    // A value beyond 2^53 survives only through the integer path.
    r.cycles = (1ULL << 60) + 3;
    std::ostringstream os;
    os.precision(17);
    writeRunResultBlock(os, r);
    std::istringstream is(os.str());
    RunResult back;
    ASSERT_TRUE(readRunResultBlock(is, back));
    EXPECT_EQ(back.cycles, (1ULL << 60) + 3);
}

TEST(Schema, GoldenCacheRoundTripsByteIdentically)
{
    // The committed 54-cell golden cache must survive a load/save
    // cycle through the schema-driven adapter without a byte of
    // drift: this is what keeps every historical cache readable.
    const std::string golden = goldenPath("wastesim_sweep_4x4.cache");
    CellCache cache;
    ASSERT_TRUE(cache.load(golden));
    EXPECT_EQ(cache.size(), 54u);

    const std::string resaved = "metrics_golden_resave.cache";
    ASSERT_TRUE(cache.save(resaved));
    EXPECT_EQ(fileBytes(golden), fileBytes(resaved));
    std::remove(resaved.c_str());
}

TEST(Schema, MetricsIncludeDerivedAggregates)
{
    RunResult r;
    r.traffic.ldReqCtl = 30;
    r.traffic.stReqCtl = 20;
    r.l1Waste[WasteCat::Used] = 60;
    r.l1Waste[WasteCat::Evict] = 40;

    const MetricSet ms = runResultMetrics(r);
    EXPECT_DOUBLE_EQ(ms.value("traffic.ld.req_ctl"), 30);
    EXPECT_DOUBLE_EQ(ms.value("traffic.total"), 50);
    EXPECT_DOUBLE_EQ(ms.value("waste.l1.total"), 100);
    EXPECT_DOUBLE_EQ(ms.value("waste.l1.waste_frac"), 0.4);
    EXPECT_FALSE(ms.has("energy.total")); // no model given
}

TEST(Schema, EnergyMetricsAreFirstClass)
{
    RunResult r;
    r.traffic.ldReqCtl = 100;
    r.dramReads = 2;

    const EnergyModel model(Topology(4, 4));
    const MetricSet ms = runResultMetrics(r, &model);
    const EnergyBreakdown e = model.estimate(r);
    EXPECT_DOUBLE_EQ(ms.value("energy.network"), e.network);
    EXPECT_DOUBLE_EQ(ms.value("energy.dram"), e.dram);
    EXPECT_DOUBLE_EQ(ms.value("energy.total"), e.total());
    EXPECT_DOUBLE_EQ(ms.value("energy.dram_per_channel"), e.dram / 4);
    EXPECT_DOUBLE_EQ(ms.value("energy.link_mm"), 4.0);
}

TEST(MetricsJson, EmitParseRoundTrip)
{
    const RunResult r = populatedResult();
    const EnergyModel model(Topology(8, 8));
    const MetricSet ms = runResultMetrics(r, &model);

    const std::string json = metricsToJson(ms);
    MetricSet back;
    ASSERT_TRUE(metricsFromJson(json, back));

    ASSERT_EQ(back.size(), ms.size());
    auto it = back.begin();
    for (const Metric &m : ms) {
        EXPECT_EQ(it->path, m.path);
        EXPECT_EQ(it->unit, m.unit);
        EXPECT_EQ(static_cast<int>(it->kind), static_cast<int>(m.kind));
        EXPECT_DOUBLE_EQ(it->value, m.value) << m.path;
        ++it;
    }
}

TEST(MetricsJson, NanEmitsAsNullAndParsesBack)
{
    MetricSet ms;
    ms.set("a", "x", std::nan(""));
    const std::string json = metricsToJson(ms);
    EXPECT_NE(json.find("null"), std::string::npos);
    MetricSet back;
    ASSERT_TRUE(metricsFromJson(json, back));
    EXPECT_TRUE(std::isnan(back.value("a")));
}

TEST(MetricsJson, RejectsMalformedInput)
{
    MetricSet out;
    EXPECT_FALSE(metricsFromJson("", out));
    EXPECT_FALSE(metricsFromJson("{\"a\": 1}", out)); // no value object
    EXPECT_FALSE(metricsFromJson("{\"a\": {\"value\": }", out));
    EXPECT_FALSE(metricsFromJson(
        "{\"a\": {\"value\": 1, \"unit\": \"x\", \"kind\": \"f64\"}} "
        "trailing",
        out));
}

TEST(SchemaFingerprint, MatchesCommittedReference)
{
    // The committed schema dump pins every metric path, unit and kind;
    // renaming or re-unit-ing a metric must be a deliberate change
    // that updates tests/golden/metrics_schema.txt.
    const std::string ref = fileBytes(goldenPath("metrics_schema.txt"));
    ASSERT_FALSE(ref.empty())
        << "missing tests/golden/metrics_schema.txt";
    const std::string firstLine = ref.substr(0, ref.find('\n'));
    EXPECT_EQ(firstLine,
              "# wastesim metrics schema " + metricsSchemaFingerprint());

    // And the full listing matches, line for line.
    std::string listing =
        "# wastesim metrics schema " + metricsSchemaFingerprint() + "\n";
    for (const Metric &m : metricsSchema())
        listing +=
            m.path + " " + m.unit + " " + metricKindName(m.kind) + "\n";
    EXPECT_EQ(listing, ref);
}

TEST(FormatDouble, RoundTripsAndPrintsIntegersPlainly)
{
    EXPECT_EQ(formatDouble(156767), "156767");
    EXPECT_EQ(formatDouble(0), "0");
    EXPECT_EQ(formatDouble(0.5), "0.5");
    for (double v : {1.0 / 3.0, 0.1, 1e300, 123456789.123456789}) {
        const std::string s = formatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(Invariants, DramChanCountersSumToAggregates)
{
    // Every real run must satisfy the channel-sum law (System::run
    // also panics on it; this exercises the reusable checker).
    SynthParams p;
    p.opsPerCore = 256;
    const SyntheticWorkload wl(p, Topology(4, 4, 4));
    const RunResult r =
        runOne(ProtocolName::MESI, wl, SimParams::scaled());
    ASSERT_GT(r.dramChan.size(), 1u);
    EXPECT_GT(r.dramReads, 0u);

    InvariantReport rep;
    checkResultInvariants(r, rep);
    EXPECT_TRUE(rep.ok()) << rep.describe();

    // Tampering with one channel counter must trip exactly that law,
    // with the delta in the report.
    RunResult bad = r;
    bad.dramChan[0].reads += 7;
    InvariantReport brep;
    checkResultInvariants(bad, brep);
    ASSERT_FALSE(brep.ok());
    EXPECT_EQ(brep.violations[0].invariant, "dram.chan-sum");
    EXPECT_EQ(brep.violations[0].path, "dram.reads");
    EXPECT_DOUBLE_EQ(brep.violations[0].delta(), 7.0);
}

} // namespace wastesim
