/** System-level tests: end-to-end runs, conservation, reports. */

#include <gtest/gtest.h>

#include "script_workload.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

namespace wastesim
{

TEST(System, TrafficConservation)
{
    // Every injected flit-hop is attributed to exactly one bucket
    // once the profilers resolve (no-epoch workload: nothing is
    // excluded as warm-up).
    auto wl = makeRandomWorkload(11);
    for (ProtocolName p :
         {ProtocolName::MESI, ProtocolName::DValidateL2}) {
        System sys(p, *wl, SimParams::scaled());
        const RunResult r = sys.run();
        EXPECT_NEAR(r.traffic.total(), r.rawFlitHops,
                    r.rawFlitHops * 1e-9 + 1e-6)
            << protocolName(p);
    }
}

TEST(System, ExecutionTimeBreakdownIsPositive)
{
    auto wl = makeRandomWorkload(12);
    System sys(ProtocolName::MESI, *wl, SimParams::scaled());
    const RunResult r = sys.run();
    EXPECT_GT(r.time.busy, 0.0);
    EXPECT_GT(r.time.total(), 0.0);
    EXPECT_GT(r.cycles, 0u);
}

TEST(System, EpochExcludesWarmup)
{
    // Identical bodies; with an epoch before the second, the measured
    // traffic roughly halves.
    auto build = [](bool with_epoch) {
        auto wl = std::make_unique<ScriptWorkload>();
        const Addr a = wl->alloc(64 * 1024);
        Region r;
        r.name = "data";
        r.base = a;
        r.size = 64 * 1024;
        const RegionId rid = wl->regionTable().add(r);
        auto phase = [&](bool writes) {
            for (unsigned i = 0; i < 256; ++i) {
                const Addr addr = a + i * bytesPerLine / 4;
                if (writes)
                    wl->store(i % numTiles, addr);
                else
                    wl->load(i % numTiles, addr);
            }
            wl->barrierAll({rid});
        };
        phase(false);
        if (with_epoch)
            wl->epochAll();
        // Stores force upgrades/registrations: measured traffic > 0
        // even with warm caches.
        phase(true);
        return wl;
    };

    auto whole = build(false);
    auto epoched = build(true);
    const RunResult all =
        runOne(ProtocolName::MESI, *whole, SimParams::scaled());
    const RunResult part =
        runOne(ProtocolName::MESI, *epoched, SimParams::scaled());
    EXPECT_LT(part.traffic.total(), all.traffic.total());
    EXPECT_GT(part.traffic.total(), 0.0);
}

TEST(System, AllProtocolsCompleteOnRandomWorkload)
{
    auto wl = makeRandomWorkload(13, 2, 150);
    for (ProtocolName p : allProtocols) {
        System sys(p, *wl, SimParams::scaled());
        const RunResult r = sys.run();
        EXPECT_TRUE(sys.coresDone()) << protocolName(p);
        EXPECT_GT(r.traffic.total(), 0.0) << protocolName(p);
        sys.checkInvariants();
    }
}

TEST(System, RunnerSweepShape)
{
    Sweep s = runSweep({BenchmarkName::Barnes},
                       {ProtocolName::MESI, ProtocolName::DValidateL2},
                       1, SimParams::scaled());
    ASSERT_EQ(s.benchNames.size(), 1u);
    ASSERT_EQ(s.protoNames.size(), 2u);
    ASSERT_EQ(s.results.size(), 1u);
    ASSERT_EQ(s.results[0].size(), 2u);
    EXPECT_EQ(s.results[0][0].protocol, "MESI");
    EXPECT_EQ(s.results[0][0].benchmark, "barnes");
}

TEST(System, ReportsRenderWithoutCrashing)
{
    Sweep s = runSweep({BenchmarkName::Barnes},
                       {ProtocolName::MESI, ProtocolName::MMemL1,
                        ProtocolName::DFlexL1, ProtocolName::DBypFull},
                       1, SimParams::scaled());
    for (const std::string &out :
         {renderFig51a(s), renderFig51b(s), renderFig51c(s),
          renderFig51d(s), renderFig52(s),
          renderFig53(s, WasteLevel::L1),
          renderFig53(s, WasteLevel::L2),
          renderFig53(s, WasteLevel::Memory),
          renderOverheadComposition(s), renderHeadline(s)}) {
        EXPECT_FALSE(out.empty());
    }
    // MESI normalizes to 100% of itself.
    const std::string fig = renderFig51a(s);
    EXPECT_NE(fig.find("100.0%"), std::string::npos);
}

TEST(System, DeadlockIsDetectedNotHung)
{
    // A workload whose barrier can never release (one core exits
    // early) must be caught by the drain check, not loop forever.
    auto wl = std::make_unique<ScriptWorkload>();
    const Addr a = wl->alloc(4096);
    for (CoreId c = 1; c < numTiles; ++c) {
        wl->load(c, a);
        wl->traces()[c]; // touch
    }
    // Only cores 1..15 arrive at a barrier; core 0 never does.
    // (Build the skewed barrier by hand.)
    // Note: barrierAll() would add it to everyone, so emulate by
    // giving core 0 an empty trace and the rest a barrier op.
    // The barrier op references BarrierInfo 0.
    // This is deliberately malformed input.
    auto &traces = const_cast<std::vector<Trace> &>(wl->traces());
    wl->barrierAll({});
    traces[0].clear();
    EXPECT_DEATH(
        {
            System sys(ProtocolName::MESI, *wl, SimParams::scaled());
            sys.run();
        },
        "deadlock");
}

TEST(System, MemoryWordCountsMatchProfiler)
{
    auto wl = makeRandomWorkload(14, 2, 100);
    System sys(ProtocolName::MESI, *wl, SimParams::scaled());
    const RunResult r = sys.run();
    // Words sent from memory == memory profiler instances (no epoch).
    EXPECT_EQ(r.wordsFromMemory,
              static_cast<std::uint64_t>(
                  r.memWaste.total() - r.memWaste[WasteCat::Excess]));
}

} // namespace wastesim
