/** Unit tests: SyntheticWorkload generator (src/trace/synthetic.*). */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "system/runner.hh"
#include "trace/synthetic.hh"

namespace wastesim
{

namespace
{

bool
tracesIdentical(const Workload &a, const Workload &b)
{
    if (a.traces().size() != b.traces().size())
        return false;
    for (CoreId c = 0; c < a.traces().size(); ++c) {
        const Trace &ta = a.traces()[c];
        const Trace &tb = b.traces()[c];
        if (ta.size() != tb.size())
            return false;
        for (std::size_t i = 0; i < ta.size(); ++i)
            if (ta[i].type != tb[i].type || ta[i].addr != tb[i].addr ||
                ta[i].arg != tb[i].arg)
                return false;
    }
    return true;
}

} // namespace

class SynthPatterns
    : public ::testing::TestWithParam<SynthParams::Pattern>
{
};

TEST_P(SynthPatterns, DeterministicForFixedSeed)
{
    SynthParams p;
    p.pattern = GetParam();
    p.seed = 1234;
    p.opsPerCore = 2000;
    auto a = makeSynthetic(p);
    auto b = makeSynthetic(p);
    EXPECT_TRUE(tracesIdentical(*a, *b));
    EXPECT_EQ(a->name(), b->name());
}

TEST_P(SynthPatterns, DifferentSeedsDiffer)
{
    SynthParams p;
    p.pattern = GetParam();
    p.opsPerCore = 2000;
    p.seed = 1;
    auto a = makeSynthetic(p);
    p.seed = 2;
    auto b = makeSynthetic(p);
    EXPECT_FALSE(tracesIdentical(*a, *b));
}

TEST_P(SynthPatterns, WellFormed)
{
    SynthParams p;
    p.pattern = GetParam();
    p.opsPerCore = 1000;
    auto wl = makeSynthetic(p);

    ASSERT_EQ(wl->traces().size(), numTiles);

    // Same barrier sequence on every core; exactly one epoch.
    std::vector<std::uint32_t> seq0;
    for (const auto &op : wl->traces()[0])
        if (op.type == Op::Type::Barrier)
            seq0.push_back(op.arg);
    EXPECT_EQ(seq0.size(), 1 + p.phases); // warm-up + per-phase
    for (CoreId c = 0; c < numTiles; ++c) {
        std::vector<std::uint32_t> seq;
        unsigned epochs = 0;
        for (const auto &op : wl->traces()[c]) {
            if (op.type == Op::Type::Barrier)
                seq.push_back(op.arg);
            epochs += op.type == Op::Type::Epoch;
        }
        EXPECT_EQ(seq, seq0) << "core " << c;
        EXPECT_EQ(epochs, 1u) << "core " << c;
    }

    // Every access is word aligned and inside a declared region.
    for (const auto &t : wl->traces()) {
        for (const auto &op : t) {
            if (op.type != Op::Type::Load &&
                op.type != Op::Type::Store)
                continue;
            EXPECT_EQ(op.addr % bytesPerWord, 0u);
            EXPECT_NE(wl->regions().regionOf(op.addr), nullptr);
        }
    }

    // Barrier self-invalidation references real regions.
    for (const auto &b : wl->barriers())
        for (RegionId id : b.selfInvalidate)
            EXPECT_LT(id, wl->regions().numRegions());
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, SynthPatterns,
    ::testing::Values(SynthParams::Pattern::Stride,
                      SynthParams::Pattern::Random,
                      SynthParams::Pattern::HotSet),
    [](const auto &info) {
        return std::string(SynthParams::patternName(info.param));
    });

TEST(Synthetic, ReadFractionShapesTheMix)
{
    SynthParams p;
    p.opsPerCore = 4000;
    p.readFraction = 0.9;
    auto reads = makeSynthetic(p);
    p.readFraction = 0.1;
    auto writes = makeSynthetic(p);

    auto count = [](const Workload &wl, Op::Type t) {
        std::size_t n = 0;
        for (const auto &tr : wl.traces())
            for (const auto &op : tr)
                n += op.type == t;
        return n;
    };

    // Warm-up loads are common to both; the measured mix dominates.
    EXPECT_GT(count(*reads, Op::Type::Load),
              count(*writes, Op::Type::Load));
    EXPECT_LT(count(*reads, Op::Type::Store),
              count(*writes, Op::Type::Store));
}

TEST(Synthetic, SharingDegreePartitionsRegions)
{
    // With degree 4 there are 4 clusters; cores of different clusters
    // must touch disjoint shared regions (8 regions, 2 per cluster).
    SynthParams p;
    p.sharingDegree = 4;
    p.sharedRegions = 8;
    p.opsPerCore = 2000;
    p.sharedFraction = 1.0;
    auto wl = makeSynthetic(p);

    std::vector<std::set<RegionId>> touched(numTiles);
    bool past_epoch[numTiles] = {};
    for (CoreId c = 0; c < numTiles; ++c) {
        for (const auto &op : wl->traces()[c]) {
            if (op.type == Op::Type::Epoch)
                past_epoch[c] = true;
            if (!past_epoch[c])
                continue;
            if (op.type != Op::Type::Load &&
                op.type != Op::Type::Store)
                continue;
            const Region *r = wl->regions().regionOf(op.addr);
            ASSERT_NE(r, nullptr);
            if (r->name.rfind("synth.shared.", 0) == 0)
                touched[c].insert(r->id);
        }
    }

    // Cores 0..3 form cluster 0, 4..7 cluster 1, etc.
    for (unsigned cluster = 0; cluster < 4; ++cluster)
        for (unsigned other = cluster + 1; other < 4; ++other)
            for (RegionId id : touched[cluster * 4])
                EXPECT_EQ(touched[other * 4].count(id), 0u)
                    << "cluster " << cluster << " vs " << other;
}

TEST(Synthetic, HotSetConcentratesAccesses)
{
    SynthParams p;
    p.pattern = SynthParams::Pattern::HotSet;
    p.hotFraction = 0.1;
    p.hotProbability = 0.9;
    p.sharedFraction = 1.0;
    p.sharedRegions = 1;
    p.sharingDegree = numTiles;
    p.opsPerCore = 4000;
    auto wl = makeSynthetic(p);

    // Find the shared region and count accesses to its first 10%.
    const Region *shared = nullptr;
    for (std::size_t i = 0; i < wl->regions().numRegions(); ++i) {
        const Region &r =
            wl->regions().region(static_cast<RegionId>(i));
        if (r.name == "synth.shared.0")
            shared = &r;
    }
    ASSERT_NE(shared, nullptr);

    std::size_t hot = 0, total = 0;
    bool past_epoch = false;
    for (const auto &op : wl->traces()[0]) {
        if (op.type == Op::Type::Epoch)
            past_epoch = true;
        if (!past_epoch || (op.type != Op::Type::Load &&
                            op.type != Op::Type::Store))
            continue;
        if (!shared->contains(op.addr))
            continue;
        ++total;
        hot += op.addr < shared->base + shared->size / 10;
    }
    ASSERT_GT(total, 100u);
    // ~90% hot + ~10% uniform spillover: well above 80%.
    EXPECT_GT(static_cast<double>(hot) / total, 0.8);
}

TEST(Synthetic, BypassFlagPropagates)
{
    SynthParams p;
    p.bypassShared = true;
    p.opsPerCore = 500;
    auto wl = makeSynthetic(p);
    bool any_bypass = false;
    for (std::size_t i = 0; i < wl->regions().numRegions(); ++i)
        any_bypass |=
            wl->regions().region(static_cast<RegionId>(i)).bypass;
    EXPECT_TRUE(any_bypass);
}

TEST(Synthetic, PatternNamesRoundTrip)
{
    for (SynthParams::Pattern p :
         {SynthParams::Pattern::Stride, SynthParams::Pattern::Random,
          SynthParams::Pattern::HotSet}) {
        SynthParams::Pattern back;
        ASSERT_TRUE(SynthParams::patternFromName(
            SynthParams::patternName(p), back));
        EXPECT_EQ(static_cast<int>(back), static_cast<int>(p));
    }
    SynthParams::Pattern dummy;
    EXPECT_FALSE(SynthParams::patternFromName("zipfian", dummy));
}

TEST(SynthPresets, EveryPresetBuildsDeterministically)
{
    for (const std::string &name : synthPresetNames()) {
        SCOPED_TRACE(name);
        SynthParams pa, pb;
        Topology ta, tb;
        ASSERT_TRUE(synthPresetFromName(name, pa, ta));
        ASSERT_TRUE(synthPresetFromName(name, pb, tb));
        EXPECT_EQ(ta, tb);

        auto a = makeSynthetic(pa, ta);
        auto b = makeSynthetic(pb, tb);
        EXPECT_TRUE(tracesIdentical(*a, *b));
        EXPECT_EQ(a->name(), b->name());
        EXPECT_GT(a->totalOps(), 0u);
        EXPECT_EQ(a->numCores(), ta.numTiles());
    }
}

TEST(SynthPresets, CuratedShapesMatchTheirStories)
{
    SynthParams sp;
    Topology topo;

    // hotset64 targets 64 cores, all in one sharing cluster.
    ASSERT_TRUE(synthPresetFromName("hotset64", sp, topo));
    EXPECT_EQ(topo.numTiles(), 64u);
    EXPECT_EQ(sp.sharingDegree, 64u);
    EXPECT_EQ(static_cast<int>(sp.pattern),
              static_cast<int>(SynthParams::Pattern::HotSet));

    // all2all makes every core share every region.
    ASSERT_TRUE(synthPresetFromName("all2all", sp, topo));
    EXPECT_EQ(sp.sharingDegree, topo.numTiles());

    // mc-corner funnels all memory traffic into corner tile 0.
    ASSERT_TRUE(synthPresetFromName("mc-corner", sp, topo));
    EXPECT_EQ(topo.numMemCtrls(), 1u);
    EXPECT_EQ(topo.memCtrlTiles().front(), 0u);

    EXPECT_FALSE(synthPresetFromName("no-such-preset", sp, topo));
}

class SynthPresetMeshes
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(SynthPresetMeshes, ParametersDeriveFromTheTopology)
{
    const auto [x, y] = GetParam();
    const Topology topo(x, y);
    const unsigned tiles = topo.numTiles();

    SynthParams hot;
    ASSERT_TRUE(synthPresetFor("hotset64", topo, hot));
    // Everybody shares one cluster; the working set grows with the
    // tile count so the hot subset stays contended at any mesh size.
    EXPECT_EQ(hot.sharingDegree, tiles);
    EXPECT_EQ(hot.regionBytes, std::max(bytesPerLine, 512 * tiles));
    EXPECT_EQ(static_cast<int>(hot.pattern),
              static_cast<int>(SynthParams::Pattern::HotSet));

    SynthParams a2a;
    ASSERT_TRUE(synthPresetFor("all2all", topo, a2a));
    // One region per core over a fixed total working set.
    EXPECT_EQ(a2a.sharedRegions, tiles);
    EXPECT_EQ(a2a.sharingDegree, tiles);
    EXPECT_EQ(a2a.regionBytes,
              std::max(bytesPerLine, 128 * 1024 / tiles));

    SynthParams mc;
    ASSERT_TRUE(synthPresetFor("mc-corner", topo, mc));
    EXPECT_EQ(mc.sharingDegree, std::min(4u, tiles));

    // Every derived parameter set builds a valid workload of the
    // right shape (trimmed op counts keep the 16x16 case fast).
    for (SynthParams p : {hot, a2a, mc}) {
        p.opsPerCore = 64;
        auto wl = makeSynthetic(p, topo);
        EXPECT_EQ(wl->numCores(), tiles);
        EXPECT_GT(wl->totalOps(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, SynthPresetMeshes,
    ::testing::Values(std::make_pair(2u, 2u), std::make_pair(8u, 8u),
                      std::make_pair(16u, 16u)),
    [](const auto &info) {
        return std::to_string(info.param.first) + "x" +
               std::to_string(info.param.second);
    });

TEST(SynthPresets, DerivedParametersMatchCuratedAtHomeTopology)
{
    // At each preset's curated topology the topology-derived
    // parameters must equal the historical fixed ones, so existing
    // traces and CI smokes reproduce unchanged.
    SynthParams fixed, derived;
    Topology topo;
    for (const std::string &name : synthPresetNames()) {
        SCOPED_TRACE(name);
        ASSERT_TRUE(synthPresetFromName(name, fixed, topo));
        ASSERT_TRUE(synthPresetFor(name, topo, derived));
        auto a = makeSynthetic(fixed, topo);
        auto b = makeSynthetic(derived, topo);
        EXPECT_TRUE(tracesIdentical(*a, *b));
    }
    // The historical hotset64 parameters specifically.
    ASSERT_TRUE(synthPresetFromName("hotset64", fixed, topo));
    EXPECT_EQ(topo.numTiles(), 64u);
    EXPECT_EQ(fixed.regionBytes, 32u * 1024);
    EXPECT_EQ(fixed.sharingDegree, 64u);
}

TEST(SynthPresets, HotsetNamesGeneralize)
{
    SynthParams sp;
    Topology topo;
    // hotsetN curates an NxN-tile mesh for any square tile count.
    ASSERT_TRUE(synthPresetFromName("hotset16", sp, topo));
    EXPECT_EQ(topo.numTiles(), 16u);
    EXPECT_EQ(sp.sharingDegree, 16u);
    ASSERT_TRUE(synthPresetFromName("hotset256", sp, topo));
    EXPECT_EQ(topo.numTiles(), 256u);
    EXPECT_EQ(sp.sharingDegree, 256u);
    // Non-square or out-of-range counts are rejected.
    EXPECT_FALSE(synthPresetFromName("hotset12", sp, topo));
    EXPECT_FALSE(synthPresetFromName("hotset1024", sp, topo));
    EXPECT_FALSE(synthPresetFromName("hotset", sp, topo));
}

TEST(SynthPresets, McCornerConcentratesLinkLoad)
{
    // The scenario exists to stress one corner of the mesh: compared
    // to the same traffic spread over four controllers, the hottest
    // link must carry measurably more flits.
    SynthParams sp;
    Topology corner;
    ASSERT_TRUE(synthPresetFromName("mc-corner", sp, corner));
    sp.opsPerCore = 1024; // trim for test time; shape is unchanged

    SimParams params = SimParams::scaled();
    params.topo = corner;
    auto wl = makeSynthetic(sp, corner);
    const RunResult one_mc =
        runOne(ProtocolName::MESI, *wl, params);

    const Topology spread(4, 4); // paper default: four corner MCs
    SimParams params4 = SimParams::scaled();
    params4.topo = spread;
    auto wl4 = makeSynthetic(sp, spread);
    const RunResult four_mc =
        runOne(ProtocolName::MESI, *wl4, params4);

    EXPECT_GT(one_mc.maxLinkFlits, four_mc.maxLinkFlits);
}

} // namespace wastesim
