/** Property tests: invariants that must hold for every protocol on
 *  randomized DRF-style workloads. */

#include <gtest/gtest.h>

#include "script_workload.hh"
#include "system/system.hh"

namespace wastesim
{

class EveryProtocol : public ::testing::TestWithParam<ProtocolName>
{
};

TEST_P(EveryProtocol, RandomWorkloadRunsClean)
{
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        auto wl = makeRandomWorkload(seed, 3, 200);
        System sys(GetParam(), *wl, SimParams::scaled());
        const RunResult r = sys.run();

        // 1. Completion (no deadlock, checked inside run()).
        EXPECT_TRUE(sys.coresDone());

        // 2. Coherence invariants.
        sys.checkInvariants();

        // 3. Traffic conservation: attributed == injected.
        EXPECT_NEAR(r.traffic.total(), r.rawFlitHops,
                    r.rawFlitHops * 1e-9 + 1e-6);

        // 4. No negative buckets anywhere.
        EXPECT_GE(r.traffic.load(), 0.0);
        EXPECT_GE(r.traffic.store(), 0.0);
        EXPECT_GE(r.traffic.writeback(), 0.0);
        EXPECT_GE(r.traffic.overhead(), 0.0);

        // 5. Every profiled word is classified (no Unclassified).
        EXPECT_EQ(r.l1Waste[WasteCat::Unclassified], 0.0);
        EXPECT_EQ(r.l2Waste[WasteCat::Unclassified], 0.0);
        EXPECT_EQ(r.memWaste[WasteCat::Unclassified], 0.0);

        // 6. Time breakdown is non-negative and bounded by wallclock.
        const TimeBreakdown &t = r.time;
        for (double v : {t.busy, t.onChip, t.toMc, t.mem, t.fromMc,
                         t.sync})
            EXPECT_GE(v, 0.0);
    }
}

TEST_P(EveryProtocol, SharedDataMigrates)
{
    // A producer/consumer chain across all cores completes and moves
    // data without memory round trips where the protocol allows it.
    auto wl = std::make_unique<ScriptWorkload>();
    const Addr a = wl->alloc(4096);
    Region r;
    r.name = "token";
    r.base = a;
    r.size = 4096;
    const RegionId rid = wl->regionTable().add(r);
    for (CoreId c = 0; c < numTiles; ++c) {
        wl->store(c, a + c * bytesPerWord);
        wl->barrierAll({rid});
        wl->load((c + 1) % numTiles, a + c * bytesPerWord);
        wl->barrierAll({rid});
    }
    System sys(GetParam(), *wl, SimParams::scaled());
    sys.run();
    sys.checkInvariants();
}

TEST_P(EveryProtocol, FalseSharingOnlyHurtsMesi)
{
    // Two cores ping-pong different words of one line.  DeNovo's
    // word-granular registration never invalidates the other word.
    auto wl = std::make_unique<ScriptWorkload>();
    const Addr a = wl->alloc(4096);
    Region r;
    r.name = "line";
    r.base = a;
    r.size = 4096;
    wl->regionTable().add(r);
    for (unsigned i = 0; i < 16; ++i) {
        wl->store(0, a);
        wl->store(1, a + 4);
        wl->barrierAll({});
    }
    System sys(GetParam(), *wl, SimParams::scaled());
    const RunResult res = sys.run();
    sys.checkInvariants();
    if (sys.config().isDeNovo()) {
        // No invalidation overhead in DeNovo, ever.
        EXPECT_DOUBLE_EQ(res.traffic.ohInv, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, EveryProtocol,
    ::testing::Values(ProtocolName::MESI, ProtocolName::MMemL1,
                      ProtocolName::DeNovo, ProtocolName::DFlexL1,
                      ProtocolName::DValidateL2, ProtocolName::DMemL1,
                      ProtocolName::DFlexL2, ProtocolName::DBypL2,
                      ProtocolName::DBypFull),
    [](const auto &info) { return protocolName(info.param); });

/** Cross-protocol sanity on one real benchmark. */
TEST(CrossProtocol, DenovoNeverUsesMesiOverheadMessages)
{
    auto wl = makeRandomWorkload(31, 2, 150);
    for (ProtocolName p :
         {ProtocolName::DeNovo, ProtocolName::DBypFull}) {
        System sys(p, *wl, SimParams::scaled());
        const RunResult r = sys.run();
        EXPECT_DOUBLE_EQ(r.traffic.ohUnblock, 0.0) << protocolName(p);
        EXPECT_DOUBLE_EQ(r.traffic.ohInv, 0.0) << protocolName(p);
        EXPECT_DOUBLE_EQ(r.traffic.ohAck, 0.0) << protocolName(p);
    }
}

TEST(CrossProtocol, LoadsAlwaysComplete)
{
    // Op-count bookkeeping: every core executes its whole trace under
    // every protocol (no lost wakeups).
    auto wl = makeRandomWorkload(32, 2, 100);
    for (ProtocolName p : allProtocols) {
        System sys(p, *wl, SimParams::scaled());
        sys.run();
        EXPECT_TRUE(sys.coresDone()) << protocolName(p);
    }
}

} // namespace wastesim
