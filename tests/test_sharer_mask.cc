/** Unit tests: the word-scan directory sharer bit vector. */

#include <gtest/gtest.h>

#include <bitset>
#include <vector>

#include "common/rng.hh"
#include "common/sharer_mask.hh"

namespace wastesim
{

namespace
{

/** Collect forEachSet output into a vector. */
std::vector<CoreId>
scan(const SharerMask &m, unsigned limit)
{
    std::vector<CoreId> out;
    m.forEachSet(limit, [&](CoreId c) { out.push_back(c); });
    return out;
}

} // namespace

TEST(SharerMask, BasicBitOps)
{
    SharerMask m;
    EXPECT_TRUE(m.none());
    EXPECT_FALSE(m.any());
    EXPECT_EQ(m.count(), 0u);

    m.set(0);
    m.set(63);
    m.set(64);
    m.set(255);
    EXPECT_TRUE(m.test(0));
    EXPECT_TRUE(m.test(63));
    EXPECT_TRUE(m.test(64));
    EXPECT_TRUE(m.test(255));
    EXPECT_FALSE(m.test(1));
    EXPECT_FALSE(m.test(128));
    EXPECT_EQ(m.count(), 4u);
    EXPECT_TRUE(m.any());

    m.reset(63);
    EXPECT_FALSE(m.test(63));
    EXPECT_EQ(m.count(), 3u);

    m.reset();
    EXPECT_TRUE(m.none());
}

TEST(SharerMask, RawConstructorMatchesLowBits)
{
    const SharerMask m(0xffULL);
    EXPECT_EQ(m.count(), 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(m.test(i));
    EXPECT_FALSE(m.test(8));
}

TEST(SharerMask, ForEachSetAscendingAndBounded)
{
    SharerMask m;
    for (unsigned b : {0u, 3u, 15u, 16u, 63u, 64u, 200u, 255u})
        m.set(b);

    EXPECT_EQ(scan(m, 256),
              (std::vector<CoreId>{0, 3, 15, 16, 63, 64, 200, 255}));
    // The limit is the live tile count: bits at/above it are invisible
    // even when set (stale state from a wider config must not leak).
    EXPECT_EQ(scan(m, 64), (std::vector<CoreId>{0, 3, 15, 16, 63}));
    EXPECT_EQ(scan(m, 16), (std::vector<CoreId>{0, 3, 15}));
    EXPECT_EQ(scan(m, 4), (std::vector<CoreId>{0, 3}));
    EXPECT_TRUE(scan(m, 0).empty());
}

TEST(SharerMask, MatchesBitsetReference)
{
    // Randomized equivalence against std::bitset (the previous
    // implementation) across every limit the topologies can use.
    Rng rng(12345);
    for (unsigned trial = 0; trial < 200; ++trial) {
        SharerMask m;
        std::bitset<maxTiles> ref;
        const unsigned bits = 1 + rng.below(64);
        for (unsigned i = 0; i < bits; ++i) {
            const unsigned b = rng.below(maxTiles);
            m.set(b);
            ref.set(b);
        }
        ASSERT_EQ(m.count(), ref.count());
        const unsigned limit = 1 + rng.below(maxTiles);
        std::vector<CoreId> expect;
        for (unsigned c = 0; c < limit; ++c)
            if (ref.test(c))
                expect.push_back(c);
        ASSERT_EQ(scan(m, limit), expect) << "limit=" << limit;
    }
}

} // namespace wastesim
