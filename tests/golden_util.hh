/**
 * @file
 * Shared helpers for tests that compare against the committed golden
 * fixtures under tests/golden/ (report snapshots, the 54-cell sweep
 * cache, the metrics schema dump).
 */

#ifndef WASTESIM_TESTS_GOLDEN_UTIL_HH
#define WASTESIM_TESTS_GOLDEN_UTIL_HH

#include <fstream>
#include <iterator>
#include <string>

namespace wastesim::testutil
{

/** Whole file as raw bytes (empty string when unreadable). */
inline std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

/** Absolute path of a fixture under tests/golden/. */
inline std::string
goldenPath(const std::string &rel)
{
    return std::string(WASTESIM_SOURCE_DIR) + "/tests/golden/" + rel;
}

} // namespace wastesim::testutil

#endif // WASTESIM_TESTS_GOLDEN_UTIL_HH
