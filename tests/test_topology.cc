/**
 * Runtime-topology tests: Topology construction and address maps,
 * trace/topology compatibility checking, and smoke runs of all nine
 * protocols on non-4x4 systems with flit-hop conservation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/topology.hh"
#include "system/runner.hh"
#include "trace/synthetic.hh"
#include "trace/trace_workload.hh"

namespace wastesim
{

namespace
{

/** A small, fast synthetic scenario for smoke runs. */
SynthParams
smokeParams()
{
    SynthParams p;
    p.seed = 7;
    p.opsPerCore = 256;
    p.phases = 2;
    p.sharedRegions = 4;
    p.regionBytes = 4 * 1024;
    p.privateBytes = 1024;
    p.sharingDegree = 2;
    return p;
}

/** Self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(Topology, DefaultIsThePaperSystem)
{
    const Topology topo;
    EXPECT_EQ(topo.meshX(), 4u);
    EXPECT_EQ(topo.meshY(), 4u);
    EXPECT_EQ(topo.numTiles(), numTiles);
    EXPECT_EQ(topo.numMemCtrls(), numMemCtrls);
    const std::vector<NodeId> corners = {0, 3, 12, 15};
    EXPECT_EQ(topo.memCtrlTiles(), corners);
    EXPECT_EQ(topo.describe(), "4x4");
    EXPECT_EQ(topo, Topology(4, 4));
}

TEST(Topology, DefaultMcPlacementIsCorners)
{
    const Topology t2x2(2, 2);
    EXPECT_EQ(t2x2.memCtrlTiles(), (std::vector<NodeId>{0, 1, 2, 3}));

    const Topology t8x2(8, 2);
    EXPECT_EQ(t8x2.memCtrlTiles(), (std::vector<NodeId>{0, 7, 8, 15}));

    const Topology t8x8(8, 8);
    EXPECT_EQ(t8x8.memCtrlTiles(), (std::vector<NodeId>{0, 7, 56, 63}));

    // A 1-row mesh has only two distinct corners.
    const Topology row(8, 1);
    EXPECT_EQ(row.memCtrlTiles(), (std::vector<NodeId>{0, 7}));
}

TEST(Topology, ExplicitMcCountAndPlacement)
{
    const Topology two(4, 4, 2);
    EXPECT_EQ(two.numMemCtrls(), 2u);
    EXPECT_EQ(two.memCtrlTiles(), (std::vector<NodeId>{0, 3}));

    const Topology eight(4, 4, 8);
    EXPECT_EQ(eight.numMemCtrls(), 8u);

    const Topology custom(4, 4, std::vector<NodeId>{5, 6, 9, 10});
    EXPECT_EQ(custom.memCtrlTile(0), 5u);
    EXPECT_EQ(custom.memCtrlTile(4), 5u); // channels wrap

    EXPECT_DEATH(Topology(2, 2, std::vector<NodeId>{0, 4}),
                 "outside");
    EXPECT_DEATH(Topology(2, 2, std::vector<NodeId>{1, 1}),
                 "duplicate");
    EXPECT_DEATH(Topology(4, 4, 17), "exceed");
}

TEST(Topology, AddressMapsCoverAllComponents)
{
    const Topology topo(8, 8, 6);
    const Addr base = 1u << 20;

    std::vector<bool> slice_seen(topo.numTiles(), false);
    std::vector<bool> ch_seen(topo.numMemCtrls(), false);
    for (Addr a = base; a < base + (1u << 18); a += bytesPerLine) {
        const NodeId s = topo.homeSlice(a);
        const unsigned c = topo.memChannel(a);
        ASSERT_LT(s, topo.numTiles());
        ASSERT_LT(c, topo.numMemCtrls());
        slice_seen[s] = true;
        ch_seen[c] = true;
    }
    for (bool b : slice_seen)
        EXPECT_TRUE(b);
    for (bool b : ch_seen)
        EXPECT_TRUE(b);

    // Slice interleave granularity is preserved at any size.
    EXPECT_EQ(topo.homeSlice(base),
              topo.homeSlice(base + (sliceInterleaveLines - 1) *
                                        bytesPerLine));
}

TEST(Topology, ParseMesh)
{
    unsigned x = 0, y = 0;
    EXPECT_TRUE(Topology::parseMesh("4x4", x, y));
    EXPECT_EQ(x, 4u);
    EXPECT_EQ(y, 4u);
    EXPECT_TRUE(Topology::parseMesh("8x2", x, y));
    EXPECT_EQ(x, 8u);
    EXPECT_EQ(y, 2u);
    EXPECT_FALSE(Topology::parseMesh("", x, y));
    EXPECT_FALSE(Topology::parseMesh("4", x, y));
    EXPECT_FALSE(Topology::parseMesh("x4", x, y));
    EXPECT_FALSE(Topology::parseMesh("4x", x, y));
    EXPECT_FALSE(Topology::parseMesh("0x4", x, y));
    EXPECT_FALSE(Topology::parseMesh("4x-2", x, y));
    EXPECT_FALSE(Topology::parseMesh("999x999", x, y));
}

TEST(Topology, DescribeDistinguishesConfigurations)
{
    EXPECT_EQ(Topology(8, 8).describe(), "8x8");
    EXPECT_NE(Topology(4, 4, 2).describe(), Topology(4, 4).describe());
    EXPECT_NE(Topology(4, 4, std::vector<NodeId>{1, 2}).describe(),
              Topology(4, 4, std::vector<NodeId>{2, 1}).describe());
}

TEST(Topology, WorkloadsSizeToTopology)
{
    for (const auto &topo :
         {Topology(2, 2), Topology(4, 4), Topology(8, 2)}) {
        const auto wl = makeSynthetic(smokeParams(), topo);
        EXPECT_EQ(wl->numCores(), topo.numTiles());
        EXPECT_EQ(wl->traces().size(), topo.numTiles());
        for (BenchmarkName b : allBenchmarks) {
            const auto bench = makeBenchmark(b, 1, topo);
            EXPECT_EQ(bench->numCores(), topo.numTiles());
        }
    }
}

TEST(Topology, TraceReplayRejectsCoreCountMismatch)
{
    TempPath tmp("topo_trace_2x2.trc");
    const auto wl = makeSynthetic(smokeParams(), Topology(2, 2));
    TraceRecorder rec(tmp.path());
    ASSERT_TRUE(rec.record(*wl)) << rec.error();

    // Matching topology loads fine...
    std::string err;
    auto ok = TraceWorkload::load(tmp.path(), Topology(2, 2), &err);
    ASSERT_NE(ok, nullptr) << err;
    EXPECT_EQ(ok->numCores(), 4u);

    // ...the default 16-core topology is rejected with a clear error.
    auto bad = TraceWorkload::load(tmp.path(), &err);
    EXPECT_EQ(bad, nullptr);
    EXPECT_NE(err.find("4 cores"), std::string::npos) << err;
    EXPECT_NE(err.find("4x4"), std::string::npos) << err;

    // Inspection without a target topology still works.
    auto any = TraceWorkload::loadAnyTopology(tmp.path(), &err);
    ASSERT_NE(any, nullptr) << err;
    EXPECT_EQ(any->numCores(), 4u);
}

TEST(Topology, SystemRejectsMismatchedWorkload)
{
    const auto wl = makeSynthetic(smokeParams(), Topology(2, 2));
    SimParams params = SimParams::scaled(); // default 4x4 topology
    EXPECT_DEATH(System(ProtocolName::MESI, *wl, params),
                 "active topology");
}

/** All nine protocols complete and conserve flit-hops on @p topo. */
static void
smokeAllProtocols(const Topology &topo)
{
    SimParams params = SimParams::scaled();
    params.topo = topo;
    const auto wl = makeSynthetic(smokeParams(), topo);
    for (ProtocolName p : allProtocols) {
        SCOPED_TRACE(std::string(protocolName(p)) + " on " +
                     topo.describe());
        const RunResult r = runOne(p, *wl, params);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.rawFlitHops, 0.0);
        // Traffic conservation: attributed == injected flit-hops.
        EXPECT_NEAR(r.traffic.total(), r.rawFlitHops,
                    r.rawFlitHops * 1e-9 + 1e-6);
    }
}

TEST(Topology, NineProtocolSmoke2x2)
{
    smokeAllProtocols(Topology(2, 2));
}

TEST(Topology, NineProtocolSmoke8x8)
{
    smokeAllProtocols(Topology(8, 8));
}

TEST(Topology, NineProtocolSmoke8x2)
{
    smokeAllProtocols(Topology(8, 2));
}

TEST(Topology, BenchmarkGeneratorRunsOn2x2)
{
    SimParams params = SimParams::scaled();
    params.topo = Topology(2, 2);
    const auto wl = makeBenchmark(BenchmarkName::LU, 1, params.topo);
    const RunResult mesi = runOne(ProtocolName::MESI, *wl, params);
    const RunResult dn = runOne(ProtocolName::DeNovo, *wl, params);
    EXPECT_GT(mesi.cycles, 0u);
    EXPECT_GT(dn.cycles, 0u);
    EXPECT_NEAR(mesi.traffic.total(), mesi.rawFlitHops,
                mesi.rawFlitHops * 1e-9 + 1e-6);
    EXPECT_NEAR(dn.traffic.total(), dn.rawFlitHops,
                dn.rawFlitHops * 1e-9 + 1e-6);
}

} // namespace wastesim
