/** Unit tests: the sharded sweep engine and its per-cell cache. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "system/sweep_engine.hh"
#include "trace/synthetic.hh"

namespace wastesim
{

namespace
{

class TempPath
{
  public:
    explicit TempPath(const std::string &p) : path_(p)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

/** A small two-topology grid for cache/shard logic tests. */
SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.topologies = {Topology(2, 2), Topology(4, 2)};
    spec.benches = {BenchmarkName::LU, BenchmarkName::FFT,
                    BenchmarkName::Barnes};
    spec.protocols = {ProtocolName::MESI, ProtocolName::DeNovo};
    return spec;
}

/** Deterministic fake cell result derived from the coordinates. */
RunResult
fakeCell(const SweepSpec &spec, const SweepCell &c)
{
    RunResult r;
    r.protocol = protocolName(spec.protocols[c.protoIdx]);
    r.benchmark = benchmarkName(spec.benches[c.benchIdx]);
    r.cycles = 1000 * (c.topoIdx + 1) + 10 * c.benchIdx + c.protoIdx;
    r.traffic.ldReqCtl = 0.25 + c.benchIdx;
    r.l1Waste.byCat[0] = 1.0 / 3.0 + c.protoIdx; // non-terminating
    r.maxLinkFlits = 7 + c.topoIdx;
    return r;
}

} // namespace

TEST(SweepSpec, CellEnumerationIsFigureOrdered)
{
    const SweepSpec spec = smallSpec();
    ASSERT_EQ(spec.numCells(), 12u);
    // topology-major, then benchmark, then protocol.
    EXPECT_EQ(spec.cellAt(0).topoIdx, 0u);
    EXPECT_EQ(spec.cellAt(0).benchIdx, 0u);
    EXPECT_EQ(spec.cellAt(0).protoIdx, 0u);
    EXPECT_EQ(spec.cellAt(1).protoIdx, 1u);
    EXPECT_EQ(spec.cellAt(2).benchIdx, 1u);
    EXPECT_EQ(spec.cellAt(6).topoIdx, 1u);
    EXPECT_EQ(spec.cellAt(11).topoIdx, 1u);
    EXPECT_EQ(spec.cellAt(11).benchIdx, 2u);
    EXPECT_EQ(spec.cellAt(11).protoIdx, 1u);
}

TEST(SweepSpec, CellKeysDistinguishEveryAxis)
{
    SweepSpec spec = smallSpec();
    const std::string base = spec.cellKey({0, 0, 0});
    EXPECT_NE(base, spec.cellKey({1, 0, 0})); // topology
    EXPECT_NE(base, spec.cellKey({0, 1, 0})); // benchmark
    EXPECT_NE(base, spec.cellKey({0, 0, 1})); // protocol

    SweepSpec scaled = spec;
    scaled.scale = 4;
    EXPECT_NE(base, scaled.cellKey({0, 0, 0}));

    SweepSpec full = spec;
    full.params = SimParams{};
    EXPECT_NE(base, full.cellKey({0, 0, 0}));
}

TEST(CellCache, SaveLoadRoundTrip)
{
    const SweepSpec spec = smallSpec();
    CellCache cache;
    for (std::size_t i = 0; i < spec.numCells(); ++i) {
        const SweepCell c = spec.cellAt(i);
        cache.put(spec.cellKey(c), fakeCell(spec, c));
    }

    TempPath tmp("cells_roundtrip.cache");
    ASSERT_TRUE(cache.save(tmp.path()));

    CellCache loaded;
    ASSERT_TRUE(loaded.load(tmp.path()));
    EXPECT_EQ(loaded.size(), spec.numCells());
    for (std::size_t i = 0; i < spec.numCells(); ++i) {
        const SweepCell c = spec.cellAt(i);
        RunResult r;
        ASSERT_TRUE(loaded.get(spec.cellKey(c), r));
        const RunResult ref = fakeCell(spec, c);
        EXPECT_EQ(r.protocol, ref.protocol);
        EXPECT_EQ(r.cycles, ref.cycles);
        EXPECT_EQ(r.l1Waste.byCat[0], ref.l1Waste.byCat[0]);
        EXPECT_EQ(r.maxLinkFlits, ref.maxLinkFlits);
    }

    // Saving the loaded cache reproduces the file byte-for-byte
    // (doubles round-trip at precision 17).
    TempPath tmp2("cells_roundtrip2.cache");
    ASSERT_TRUE(loaded.save(tmp2.path()));
    EXPECT_EQ(fileBytes(tmp.path()), fileBytes(tmp2.path()));
}

TEST(CellCache, LoadRejectsLegacyAndCorrupt)
{
    CellCache cache;
    EXPECT_FALSE(cache.load("no_such_cells.cache"));

    TempPath tmp("cells_legacy.cache");
    {
        std::ofstream os(tmp.path());
        os << "wastesim-sweep-v3\ntag\n1 1\n";
    }
    EXPECT_FALSE(cache.load(tmp.path()));
    EXPECT_EQ(cache.size(), 0u);

    {
        std::ofstream os(tmp.path());
        os << "wastesim-cells-v1\n3\nkey-without-a-body\n";
    }
    EXPECT_FALSE(cache.load(tmp.path()));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(CellCache, MergeDetectsConflicts)
{
    const SweepSpec spec = smallSpec();
    const SweepCell c0 = spec.cellAt(0), c1 = spec.cellAt(1);

    CellCache a, b;
    a.put(spec.cellKey(c0), fakeCell(spec, c0));
    b.put(spec.cellKey(c1), fakeCell(spec, c1));
    // Overlap with identical content is fine.
    b.put(spec.cellKey(c0), fakeCell(spec, c0));

    ASSERT_TRUE(a.merge(b));
    EXPECT_EQ(a.size(), 2u);

    // A contradicting result for an existing key must be refused.
    CellCache evil;
    RunResult wrong = fakeCell(spec, c0);
    wrong.cycles += 1;
    evil.put(spec.cellKey(c0), wrong);
    std::string err;
    EXPECT_FALSE(a.merge(evil, &err));
    EXPECT_NE(err.find("conflicting"), std::string::npos);
    // And the refused merge must not have modified the target.
    RunResult still;
    ASSERT_TRUE(a.get(spec.cellKey(c0), still));
    EXPECT_EQ(still.cycles, fakeCell(spec, c0).cycles);
}

TEST(SweepEngine, ShardedAndMergedCacheIsByteIdentical)
{
    const SweepSpec spec = smallSpec();

    // Unsharded reference.
    TempPath whole("cells_whole.cache");
    {
        SweepEngine eng(spec);
        eng.setCompute(fakeCell);
        CellCache cache;
        eng.run(cache);
        EXPECT_EQ(eng.cellsComputed(), spec.numCells());
        ASSERT_TRUE(cache.save(whole.path()));
    }

    for (unsigned nshards : {2u, 3u, 5u}) {
        // Every shard runs in its own engine + cache, as separate
        // processes would.
        std::vector<CellCache> parts(nshards);
        std::size_t total = 0;
        for (unsigned s = 0; s < nshards; ++s) {
            SweepEngine eng(spec);
            eng.setShard(s, nshards);
            eng.setCompute(fakeCell);
            eng.run(parts[s]);
            total += eng.cellsComputed();
        }
        EXPECT_EQ(total, spec.numCells()) << nshards << " shards";

        CellCache merged;
        for (const CellCache &p : parts)
            ASSERT_TRUE(merged.merge(p));

        TempPath mergedPath("cells_merged.cache");
        ASSERT_TRUE(merged.save(mergedPath.path()));
        EXPECT_EQ(fileBytes(whole.path()), fileBytes(mergedPath.path()))
            << nshards << " shards";
    }
}

TEST(SweepEngine, ShardSlicesPartitionTheGrid)
{
    const SweepSpec spec = smallSpec();
    std::vector<bool> seen(spec.numCells(), false);
    for (unsigned s = 0; s < 5; ++s) {
        SweepEngine eng(spec);
        eng.setShard(s, 5);
        for (std::size_t flat : eng.shardCellIndices()) {
            ASSERT_LT(flat, spec.numCells());
            EXPECT_FALSE(seen[flat]);
            seen[flat] = true;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_TRUE(seen[i]) << "cell " << i << " unowned";
}

TEST(SweepEngine, IncrementalCacheComputesOnlyMissingCells)
{
    SweepSpec spec = smallSpec();
    spec.topologies = {Topology(2, 2)};

    int computed = 0;
    auto counting = [&](const SweepSpec &s, const SweepCell &c) {
        ++computed;
        return fakeCell(s, c);
    };

    CellCache cache;
    {
        SweepEngine eng(spec);
        eng.setCompute(counting);
        eng.run(cache);
        EXPECT_EQ(computed, 6);
        EXPECT_EQ(eng.cellsHit(), 0u);
    }

    // Same grid again: all hits, nothing computed.
    {
        SweepEngine eng(spec);
        eng.setCompute(counting);
        const auto sweeps = eng.run(cache);
        EXPECT_EQ(computed, 6);
        EXPECT_EQ(eng.cellsHit(), 6u);
        EXPECT_EQ(sweeps.at(0).results[1][1].cycles,
                  fakeCell(spec, spec.cellAt(3)).cycles);
    }

    // Growing the mesh list computes only the new topology's cells;
    // the 2x2 results are served from the incremental cache.
    spec.topologies = {Topology(2, 2), Topology(4, 2)};
    {
        SweepEngine eng(spec);
        eng.setCompute(counting);
        const auto sweeps = eng.run(cache);
        EXPECT_EQ(computed, 12);
        EXPECT_EQ(eng.cellsHit(), 6u);
        EXPECT_EQ(eng.cellsComputed(), 6u);
        ASSERT_EQ(sweeps.size(), 2u);
    }
    EXPECT_EQ(cache.size(), 12u);
}

TEST(SweepEngine, AutosavePersistsEveryFinishedCell)
{
    SweepSpec spec = smallSpec();
    spec.topologies = {Topology(2, 2)};
    TempPath tmp("cells_autosave.cache");

    // Single-threaded so the compute callback can observe the file
    // deterministically after each preceding cell.
    setSweepJobs(1);
    std::size_t calls = 0;
    auto counting = [&](const SweepSpec &s, const SweepCell &c) {
        // Every cell computed before this one must already be on disk
        // — that is what makes a killed shard resumable.
        CellCache seen;
        if (calls == 0) {
            EXPECT_FALSE(seen.load(tmp.path()));
        } else {
            EXPECT_TRUE(seen.load(tmp.path()));
            EXPECT_EQ(seen.size(), calls);
        }
        ++calls;
        return fakeCell(s, c);
    };

    CellCache cache;
    SweepEngine eng(spec);
    eng.setCompute(counting);
    eng.setAutosave(tmp.path());
    eng.run(cache);
    setSweepJobs(0);
    EXPECT_EQ(calls, spec.numCells());

    // The autosaved file holds the complete grid and is byte-identical
    // to an explicit save of the final cache.
    TempPath full("cells_autosave_full.cache");
    ASSERT_TRUE(cache.save(full.path()));
    EXPECT_EQ(fileBytes(tmp.path()), fileBytes(full.path()));
}

TEST(SweepEngine, AutosaveResumesAKilledRun)
{
    const SweepSpec spec = smallSpec();
    TempPath tmp("cells_resume.cache");

    // "Kill" a run after half the grid: shard 0/2 stands in for a
    // process that died mid-sweep with its autosaved partial cache.
    std::size_t firstRun = 0;
    {
        CellCache cache;
        SweepEngine eng(spec);
        eng.setShard(0, 2);
        eng.setCompute([&](const SweepSpec &s, const SweepCell &c) {
            ++firstRun;
            return fakeCell(s, c);
        });
        eng.setAutosave(tmp.path());
        eng.run(cache);
    }
    EXPECT_EQ(firstRun, spec.numCells() / 2);

    // The restarted (unsharded) run loads the partial file and only
    // computes the cells the killed run never finished.
    CellCache resumed;
    ASSERT_TRUE(resumed.load(tmp.path()));
    std::size_t secondRun = 0;
    SweepEngine eng(spec);
    eng.setCompute([&](const SweepSpec &s, const SweepCell &c) {
        ++secondRun;
        return fakeCell(s, c);
    });
    eng.setAutosave(tmp.path());
    eng.run(resumed);
    EXPECT_EQ(eng.cellsHit(), spec.numCells() / 2);
    EXPECT_EQ(secondRun, spec.numCells() - firstRun);

    // The resumed file equals a never-interrupted run's cache.
    CellCache whole;
    SweepEngine ref(spec);
    ref.setCompute(fakeCell);
    ref.run(whole);
    TempPath wholePath("cells_resume_whole.cache");
    ASSERT_TRUE(whole.save(wholePath.path()));
    EXPECT_EQ(fileBytes(tmp.path()), fileBytes(wholePath.path()));
}

TEST(CellCache, SaveAtomicLeavesNoTempFile)
{
    const SweepSpec spec = smallSpec();
    CellCache cache;
    cache.put(spec.cellKey(spec.cellAt(0)),
              fakeCell(spec, spec.cellAt(0)));

    TempPath tmp("cells_atomic.cache");
    ASSERT_TRUE(cache.saveAtomic(tmp.path()));
    CellCache back;
    EXPECT_TRUE(back.load(tmp.path()));
    EXPECT_EQ(back.size(), 1u);
    // The per-process staging file must be gone after the rename.
    std::ifstream staging(tmp.path() + ".tmp." +
                          std::to_string(::getpid()));
    EXPECT_FALSE(staging.good());
}

TEST(SweepEngine, RealCellsMatchRunOne)
{
    // Two real (tiny) simulations through the engine must equal the
    // direct runOne results: the engine adds caching and scheduling,
    // never different numbers.
    SweepSpec spec;
    spec.topologies = {Topology(2, 2)};
    spec.benches = {BenchmarkName::LU};
    spec.protocols = {ProtocolName::MESI, ProtocolName::DBypFull};

    CellCache cache;
    SweepEngine eng(spec);
    const Sweep s = eng.run(cache).at(0);

    const SimParams params = spec.paramsFor(0);
    for (unsigned p = 0; p < 2; ++p) {
        const RunResult ref =
            runOne(spec.protocols[p], BenchmarkName::LU, 1, params);
        EXPECT_EQ(s.results[0][p].cycles, ref.cycles);
        EXPECT_EQ(s.results[0][p].traffic.total(),
                  ref.traffic.total());
        EXPECT_EQ(s.results[0][p].messages, ref.messages);
        EXPECT_EQ(s.results[0][p].maxLinkFlits, ref.maxLinkFlits);
    }

    // And a second engine over the same cache serves them as hits,
    // byte-identically through the serialization.
    SweepEngine again(eng.spec());
    const Sweep s2 = again.run(cache).at(0);
    EXPECT_EQ(again.cellsHit(), 2u);
    for (unsigned p = 0; p < 2; ++p) {
        EXPECT_EQ(s2.results[0][p].cycles, s.results[0][p].cycles);
        EXPECT_EQ(s2.results[0][p].traffic.total(),
                  s.results[0][p].traffic.total());
    }
}

} // namespace wastesim
