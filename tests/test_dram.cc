/** Unit tests: DRAM timing, address mapping, FR-FCFS scheduling. */

#include <gtest/gtest.h>

#include "dram/dram_channel.hh"
#include "dram/dram_timing.hh"
#include "sim/event_queue.hh"

namespace wastesim
{

namespace
{

/** A line in channel 0, local line number @p n. */
Addr
ch0Line(Addr n)
{
    return n * numMemCtrls * bytesPerLine;
}

} // namespace

TEST(DramMap, ChannelLocality)
{
    DramMap map;
    EXPECT_EQ(map.localLine(ch0Line(5)), 5u);
    EXPECT_EQ(map.channelOf(ch0Line(5)), 0u);
}

TEST(DramMap, RowAndBank)
{
    DramMap map;
    const unsigned lpr = map.timing.linesPerRow;
    // Lines within one row share bank and row.
    EXPECT_EQ(map.bankOf(ch0Line(0)), map.bankOf(ch0Line(lpr - 1)));
    EXPECT_EQ(map.rowOf(ch0Line(0)), map.rowOf(ch0Line(lpr - 1)));
    // The next row lands on the next bank (row-interleaved banking).
    EXPECT_NE(map.bankOf(ch0Line(0)), map.bankOf(ch0Line(lpr)));
}

TEST(DramMap, SameRowPredicate)
{
    DramMap map;
    EXPECT_TRUE(map.sameRow(ch0Line(0), ch0Line(1)));
    EXPECT_FALSE(map.sameRow(ch0Line(0),
                             ch0Line(map.timing.linesPerRow)));
    // Different channels never share a row.
    EXPECT_FALSE(map.sameRow(ch0Line(0), ch0Line(0) + bytesPerLine));
}

TEST(DramTiming, LatencyOrdering)
{
    DramTiming t;
    EXPECT_LT(t.rowHitLatency(), t.rowMissLatency());
    EXPECT_LT(t.rowMissLatency(), t.rowConflictLatency());
    EXPECT_EQ(t.totalBanks(), 16u);
}

TEST(DramChannel, SingleReadLatency)
{
    EventQueue eq;
    DramMap map;
    DramChannel ch(eq, map);
    Tick done = 0;
    ch.enqueue({ch0Line(0), false, wordsPerLine, [&](Tick t) { done = t; }});
    eq.run();
    EXPECT_EQ(done, map.timing.rowMissLatency());
    EXPECT_EQ(ch.reads(), 1u);
    EXPECT_EQ(ch.rowMisses(), 1u);
}

TEST(DramChannel, OpenPageRowHit)
{
    EventQueue eq;
    DramMap map;
    DramChannel ch(eq, map);
    Tick t0 = 0, done = 0;
    // Chain the second access off the first completion so the row is
    // guaranteed open and the bank/bus idle.
    ch.enqueue({ch0Line(0), false, wordsPerLine, [&](Tick t) {
                    t0 = t;
                    ch.enqueue({ch0Line(1), false, wordsPerLine,
                                [&](Tick t2) { done = t2; }});
                }});
    eq.run();
    EXPECT_EQ(ch.rowHits(), 1u);
    EXPECT_EQ(done - t0, map.timing.rowHitLatency());
}

TEST(DramChannel, RowConflictReopens)
{
    EventQueue eq;
    DramMap map;
    DramChannel ch(eq, map);
    const unsigned lpr = map.timing.linesPerRow;
    const unsigned banks = map.timing.totalBanks();
    ch.enqueue({ch0Line(0), false, wordsPerLine, nullptr});
    eq.run();
    // Same bank, different row: banks rows apart.
    ch.enqueue({ch0Line(static_cast<Addr>(lpr) * banks), false, wordsPerLine,
                nullptr});
    eq.run();
    EXPECT_EQ(ch.rowConflicts(), 1u);
}

TEST(DramChannel, FrFcfsPrefersRowHit)
{
    EventQueue eq;
    DramMap map;
    DramChannel ch(eq, map);
    // Open row 0 of bank 0.
    ch.enqueue({ch0Line(0), false, wordsPerLine, nullptr});
    eq.run();

    // Enqueue a conflicting older request and a row-hit newer one
    // while the bank is busy... they both target bank 0; issue them
    // at the same instant and check the row hit goes first.
    std::vector<int> order;
    const unsigned lpr = map.timing.linesPerRow;
    const unsigned banks = map.timing.totalBanks();
    ch.enqueue({ch0Line(static_cast<Addr>(lpr) * banks), false, wordsPerLine,
                [&](Tick) { order.push_back(1); }}); // row conflict
    ch.enqueue({ch0Line(1), false, wordsPerLine,
                [&](Tick) { order.push_back(2); }}); // row hit
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2); // first-ready wins
    EXPECT_EQ(order[1], 1);
}

TEST(DramChannel, BankParallelismBeatsSerial)
{
    DramMap map;

    // Two requests to the same bank (serialized)...
    EventQueue eq1;
    DramChannel same(eq1, map);
    Tick done_same = 0;
    const unsigned lpr = map.timing.linesPerRow;
    const unsigned banks = map.timing.totalBanks();
    same.enqueue({ch0Line(0), false, wordsPerLine, nullptr});
    same.enqueue({ch0Line(static_cast<Addr>(lpr) * banks), false, wordsPerLine,
                  [&](Tick t) { done_same = t; }});
    eq1.run();

    // ...take longer than two to different banks.
    EventQueue eq2;
    DramChannel diff(eq2, map);
    Tick done_diff = 0;
    diff.enqueue({ch0Line(0), false, wordsPerLine, nullptr});
    diff.enqueue({ch0Line(lpr), false, wordsPerLine,
                  [&](Tick t) { done_diff = t; }});
    eq2.run();

    EXPECT_LT(done_diff, done_same);
}

TEST(DramChannel, WritesCounted)
{
    EventQueue eq;
    DramMap map;
    DramChannel ch(eq, map);
    ch.enqueue({ch0Line(0), true, wordsPerLine, nullptr});
    ch.enqueue({ch0Line(1), false, wordsPerLine, nullptr});
    eq.run();
    EXPECT_EQ(ch.writes(), 1u);
    EXPECT_EQ(ch.reads(), 1u);
}

TEST(DramChannel, BusSerializesBursts)
{
    EventQueue eq;
    DramMap map;
    DramChannel ch(eq, map);
    // Many independent banks issued together still serialize on the
    // data bus: completion spacing >= tBurst.
    std::vector<Tick> dones;
    const unsigned lpr = map.timing.linesPerRow;
    for (unsigned b = 0; b < 4; ++b) {
        ch.enqueue({ch0Line(static_cast<Addr>(b) * lpr), false, wordsPerLine,
                    [&](Tick t) { dones.push_back(t); }});
    }
    eq.run();
    ASSERT_EQ(dones.size(), 4u);
    for (std::size_t i = 1; i < dones.size(); ++i)
        EXPECT_GE(dones[i] - dones[i - 1], map.timing.tBurst);
}

} // namespace wastesim
