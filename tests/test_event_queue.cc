/** Unit tests: discrete-event kernel ordering and draining. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

namespace wastesim
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.schedule(1, [&] {
            eq.schedule(1, [&] { ++fired; });
            ++fired;
        });
        ++fired;
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, ZeroDelayRunsAtSameTick)
{
    EventQueue eq;
    eq.schedule(5, [&] {
        eq.schedule(0, [&] { EXPECT_EQ(eq.now(), 5u); });
    });
    eq.run();
}

TEST(EventQueue, RunLimitStops)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(100, [&] { late = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(late);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int n = 0;
    eq.schedule(1, [&] { ++n; });
    eq.schedule(2, [&] { ++n; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(n, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(n, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ResetClears)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}

// The calendar kernel splits events between a near-future wheel and a
// far-future overflow heap.  Same-tick FIFO must hold even when one
// tick's events land on both sides of that boundary: events scheduled
// while the tick was beyond the horizon (overflow) must run before
// events scheduled later for the same tick (wheel).
TEST(EventQueue, SameTickFifoAcrossHorizonBoundary)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick target = 100'000; // far beyond any wheel horizon

    // Scheduled at t=0: target is beyond the horizon -> overflow.
    for (int i = 0; i < 5; ++i)
        eq.scheduleAt(target, [&, i] { order.push_back(i); });

    // An intermediate event close to the target schedules five more
    // for the SAME tick — now within the horizon -> wheel.
    eq.scheduleAt(target - 10, [&] {
        for (int i = 5; i < 10; ++i)
            eq.scheduleAt(target, [&, i] { order.push_back(i); });
    });

    EXPECT_TRUE(eq.run());
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i) << "at position " << i;
}

// Same-tick FIFO across wheel bucket-index wraps: delays larger than
// any plausible wheel size exercise slot reuse after wrap-around.
TEST(EventQueue, FifoAcrossBucketWraps)
{
    EventQueue eq;
    std::vector<unsigned> order;
    // Chains of events separated by a stride that is NOT a power of
    // two, so consecutive events hit unrelated buckets and ticks far
    // apart map onto reused slots.
    const Tick stride = 12'345;
    for (unsigned chain = 0; chain < 4; ++chain) {
        for (unsigned k = 0; k < 50; ++k) {
            eq.scheduleAt(Tick(k) * stride,
                          [&, chain, k] { order.push_back(k * 4 + chain); });
        }
    }
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(order.size(), 200u);
    for (unsigned i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ResetRecyclesPooledEntries)
{
    EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i * 500), [] {});
    const std::size_t pooled = eq.pooledEntries();
    EXPECT_GE(pooled, 100u);

    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
    // Every record returned to the free list; the arena kept its size.
    EXPECT_EQ(eq.pooledEntries(), pooled);
    EXPECT_EQ(eq.freeEntries(), pooled);

    // Scheduling after reset reuses pooled records instead of growing.
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i), [&] { ++fired; });
    EXPECT_EQ(eq.pooledEntries(), pooled);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 100);
}

namespace
{

/**
 * Reference kernel: the original global (tick, seq) priority queue,
 * modeled abstractly over event ids.
 */
class RefQueue
{
  public:
    void
    push(Tick when, std::uint64_t id)
    {
        q_.push(Ev{when, nextSeq_++, id});
    }

    bool empty() const { return q_.empty(); }

    std::uint64_t
    pop(Tick &when)
    {
        Ev e = q_.top();
        q_.pop();
        when = e.when;
        return e.id;
    }

  private:
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t id;
    };
    struct Later
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Ev, std::vector<Ev>, Later> q_;
};

/** Deterministic child policy shared by both kernels under test. */
struct ChildRule
{
    // Delay mix crossing every interesting boundary: same tick,
    // +1, bucket-sized, horizon-sized, deep overflow.
    static Tick
    delay(std::uint64_t id)
    {
        static constexpr Tick mix[] = {0,    1,     7,     63,
                                       512,  4095,  16383, 16384,
                                       16385, 60000, 250000};
        return mix[id % (sizeof(mix) / sizeof(mix[0]))];
    }

    static bool spawns(std::uint64_t id) { return id % 3 != 2; }
};

} // namespace

// Randomized equivalence: the calendar/bucket kernel must execute an
// arbitrary workload of nested schedulings in exactly the order of the
// reference (tick, sequence) priority queue.
TEST(EventQueue, RandomizedEquivalenceWithPriorityQueue)
{
    std::mt19937_64 rng(0xC0FFEE);
    std::uniform_int_distribution<Tick> seed_delay(0, 300'000);

    EventQueue eq;
    RefQueue ref;
    std::vector<std::uint64_t> eq_log, ref_log;
    std::uint64_t next_id = 0;
    std::uint64_t budget = 30'000; // total events per kernel

    // Self-propagating event for the real kernel.
    struct Actor
    {
        EventQueue *eq;
        std::vector<std::uint64_t> *log;
        std::uint64_t *next_id;
        std::uint64_t *budget;
        std::uint64_t id;

        void
        operator()()
        {
            log->push_back(id);
            if (*budget == 0 || !ChildRule::spawns(id))
                return;
            --*budget;
            const std::uint64_t child = (*next_id)++;
            eq->schedule(ChildRule::delay(id),
                         Actor{eq, log, next_id, budget, child});
        }
    };

    // Identical seed events for both kernels.
    std::vector<std::pair<Tick, std::uint64_t>> seeds;
    for (int i = 0; i < 500; ++i)
        seeds.emplace_back(seed_delay(rng), next_id++);
    for (auto [when, id] : seeds)
        eq.scheduleAt(when, Actor{&eq, &eq_log, &next_id, &budget, id});
    eq.run();

    // Replay the same workload on the reference kernel: same seeds,
    // same child policy, ids assigned in schedule order.
    std::uint64_t ref_next_id = 0;
    std::uint64_t ref_budget = 30'000;
    for (auto [when, id] : seeds) {
        ref.push(when, id);
        ref_next_id = std::max(ref_next_id, id + 1);
    }
    while (!ref.empty()) {
        Tick when = 0;
        const std::uint64_t id = ref.pop(when);
        ref_log.push_back(id);
        if (ref_budget > 0 && ChildRule::spawns(id)) {
            --ref_budget;
            ref.push(when + ChildRule::delay(id), ref_next_id++);
        }
    }

    ASSERT_EQ(eq_log.size(), ref_log.size());
    for (std::size_t i = 0; i < eq_log.size(); ++i)
        ASSERT_EQ(eq_log[i], ref_log[i]) << "divergence at event " << i;
}

} // namespace wastesim
