/** Unit tests: discrete-event kernel ordering and draining. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace wastesim
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.schedule(1, [&] {
            eq.schedule(1, [&] { ++fired; });
            ++fired;
        });
        ++fired;
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, ZeroDelayRunsAtSameTick)
{
    EventQueue eq;
    eq.schedule(5, [&] {
        eq.schedule(0, [&] { EXPECT_EQ(eq.now(), 5u); });
    });
    eq.run();
}

TEST(EventQueue, RunLimitStops)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(100, [&] { late = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(late);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int n = 0;
    eq.schedule(1, [&] { ++n; });
    eq.schedule(2, [&] { ++n; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(n, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(n, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ResetClears)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}

} // namespace wastesim
