/** Unit tests: sweep serialization and the on-disk sweep cache. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/runner.hh"
#include "trace/synthetic.hh"

namespace wastesim
{

namespace
{

/** A fabricated sweep with recognizable, distinct values. */
Sweep
fakeSweep(double salt)
{
    Sweep s;
    for (unsigned b = 0; b < numBenchmarks; ++b)
        s.benchNames.push_back(benchmarkName(allBenchmarks[b]));
    for (unsigned p = 0; p < numProtocols; ++p)
        s.protoNames.push_back(protocolName(allProtocols[p]));
    s.results.assign(numBenchmarks,
                     std::vector<RunResult>(numProtocols));
    for (unsigned b = 0; b < numBenchmarks; ++b) {
        for (unsigned p = 0; p < numProtocols; ++p) {
            RunResult &r = s.results[b][p];
            r.benchmark = s.benchNames[b];
            r.protocol = s.protoNames[p];
            r.cycles = 1000 * (b + 1) + p;
            r.traffic.ldReqCtl = salt + b * 10 + p;
            r.traffic.wbMemWaste = salt * 2 + 0.25;
            r.l1Waste.byCat[0] = salt + 0.5;
            r.time.busy = salt + 1.5;
            r.dramReads = b * 7 + p;
            r.maxLinkFlits = 42 + b;
        }
    }
    return s;
}

/** RAII environment variable override. */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvVar()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool had_;
};

class TempPath
{
  public:
    explicit TempPath(const std::string &p) : path_(p)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

void
expectSweepsEqual(const Sweep &a, const Sweep &b)
{
    ASSERT_EQ(a.benchNames, b.benchNames);
    ASSERT_EQ(a.protoNames, b.protoNames);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        ASSERT_EQ(a.results[i].size(), b.results[i].size());
        for (std::size_t j = 0; j < a.results[i].size(); ++j) {
            const RunResult &x = a.results[i][j];
            const RunResult &y = b.results[i][j];
            EXPECT_EQ(x.protocol, y.protocol);
            EXPECT_EQ(x.benchmark, y.benchmark);
            EXPECT_EQ(x.cycles, y.cycles);
            EXPECT_EQ(x.traffic.ldReqCtl, y.traffic.ldReqCtl);
            EXPECT_EQ(x.traffic.wbMemWaste, y.traffic.wbMemWaste);
            EXPECT_EQ(x.l1Waste.byCat[0], y.l1Waste.byCat[0]);
            EXPECT_EQ(x.time.busy, y.time.busy);
            EXPECT_EQ(x.dramReads, y.dramReads);
            EXPECT_EQ(x.maxLinkFlits, y.maxLinkFlits);
        }
    }
}

} // namespace

TEST(SweepCache, SaveLoadRoundTrip)
{
    const Sweep s = fakeSweep(3.0);
    TempPath tmp("sweep_roundtrip.cache");
    ASSERT_TRUE(saveSweep(s, tmp.path()));

    Sweep loaded;
    ASSERT_TRUE(loadSweep(loaded, tmp.path()));
    expectSweepsEqual(s, loaded);
}

TEST(SweepCache, LoadRejectsMissingAndCorrupt)
{
    Sweep s;
    EXPECT_FALSE(loadSweep(s, "no_such_sweep.cache"));

    TempPath tmp("sweep_corrupt.cache");
    {
        std::FILE *f = std::fopen(tmp.path().c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("wrong-magic\n1 1\n", f);
        std::fclose(f);
    }
    EXPECT_FALSE(loadSweep(s, tmp.path()));
}

TEST(SweepCache, CachedFullSweepUsesCacheOnHit)
{
    TempPath tmp("sweep_hit.cache");
    EnvVar cache("WASTESIM_CACHE", tmp.path().c_str());
    EnvVar no_cache("WASTESIM_NO_CACHE", nullptr);

    int computed = 0;
    auto compute = [&](unsigned, SimParams) {
        ++computed;
        return fakeSweep(7.0);
    };

    // Miss: compute runs once and populates the cache file.
    const Sweep first = cachedFullSweep(1, SimParams::scaled(), compute);
    EXPECT_EQ(computed, 1);
    expectSweepsEqual(first, fakeSweep(7.0));

    // Hit: served from disk, compute not invoked again.
    const Sweep second =
        cachedFullSweep(1, SimParams::scaled(), compute);
    EXPECT_EQ(computed, 1);
    expectSweepsEqual(second, fakeSweep(7.0));
}

TEST(SweepCache, NoCacheEnvForcesRecompute)
{
    TempPath tmp("sweep_nocache.cache");
    EnvVar cache("WASTESIM_CACHE", tmp.path().c_str());

    int computed = 0;
    auto compute = [&](unsigned, SimParams) {
        ++computed;
        return fakeSweep(9.0);
    };

    // Populate the cache normally...
    {
        EnvVar no_cache("WASTESIM_NO_CACHE", nullptr);
        cachedFullSweep(1, SimParams::scaled(), compute);
        ASSERT_EQ(computed, 1);
    }

    // ...then WASTESIM_NO_CACHE must bypass both read and write.
    {
        EnvVar no_cache("WASTESIM_NO_CACHE", "1");
        cachedFullSweep(1, SimParams::scaled(), compute);
        EXPECT_EQ(computed, 2);
        cachedFullSweep(1, SimParams::scaled(), compute);
        EXPECT_EQ(computed, 3);
    }

    // With the variable gone the earlier cache file serves again.
    {
        EnvVar no_cache("WASTESIM_NO_CACHE", nullptr);
        cachedFullSweep(1, SimParams::scaled(), compute);
        EXPECT_EQ(computed, 3);
    }
}

TEST(SweepCache, ConfigChangeInvalidatesCache)
{
    TempPath tmp("sweep_config.cache");
    EnvVar cache("WASTESIM_CACHE", tmp.path().c_str());
    EnvVar no_cache("WASTESIM_NO_CACHE", nullptr);

    int computed = 0;
    auto compute = [&](unsigned, SimParams) {
        ++computed;
        return fakeSweep(13.0);
    };

    cachedFullSweep(1, SimParams::scaled(), compute);
    ASSERT_EQ(computed, 1);

    // Same path, different scale: must recompute, not serve scale-1.
    cachedFullSweep(2, SimParams::scaled(), compute);
    EXPECT_EQ(computed, 2);

    // Different hierarchy parameters: also a miss.
    cachedFullSweep(2, SimParams{}, compute);
    EXPECT_EQ(computed, 3);

    // Unchanged configuration: hit again.
    cachedFullSweep(2, SimParams{}, compute);
    EXPECT_EQ(computed, 3);

    // A different topology (--mesh) must miss, not serve 4x4 figures.
    SimParams mesh2x2;
    mesh2x2.topo = Topology(2, 2);
    cachedFullSweep(2, mesh2x2, compute);
    EXPECT_EQ(computed, 4);

    // Same mesh, different MC placement: still a miss.
    SimParams mc2;
    mc2.topo = Topology(2, 2, 2);
    cachedFullSweep(2, mc2, compute);
    EXPECT_EQ(computed, 5);

    // Unchanged topology: hit.
    cachedFullSweep(2, mc2, compute);
    EXPECT_EQ(computed, 5);
}

TEST(SweepCache, StaleCacheShapeTriggersRecompute)
{
    TempPath tmp("sweep_stale.cache");
    EnvVar cache("WASTESIM_CACHE", tmp.path().c_str());
    EnvVar no_cache("WASTESIM_NO_CACHE", nullptr);

    // A valid file whose grid is not the full 9x6 paper grid.
    Sweep small;
    small.benchNames = {"LU"};
    small.protoNames = {"MESI"};
    small.results.assign(1, std::vector<RunResult>(1));
    ASSERT_TRUE(saveSweep(small, tmp.path()));

    int computed = 0;
    auto compute = [&](unsigned, SimParams) {
        ++computed;
        return fakeSweep(11.0);
    };
    const Sweep s = cachedFullSweep(1, SimParams::scaled(), compute);
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(s.benchNames.size(), numBenchmarks);
}

TEST(RunSweep, WorkloadOverloadKeepsFigureOrder)
{
    // A degenerate grid (no workloads) still carries protocol names
    // in figure order; exercises the thread-pool path cheaply.
    const Sweep s = runSweep(std::vector<const Workload *>{},
                             {ProtocolName::MESI, ProtocolName::DeNovo},
                             SimParams::scaled());
    ASSERT_EQ(s.protoNames.size(), 2u);
    EXPECT_EQ(s.protoNames[0], "MESI");
    EXPECT_EQ(s.protoNames[1], "DeNovo");
    EXPECT_TRUE(s.benchNames.empty());
    EXPECT_TRUE(s.results.empty());
}

TEST(RunSweep, ParallelMatchesSerial)
{
    // The pool must not change results, only wall-clock: a sweep at
    // WASTESIM_JOBS=4 is cell-for-cell identical to WASTESIM_JOBS=1.
    SynthParams p;
    p.opsPerCore = 400;
    p.phases = 2;
    auto wa = makeSynthetic(p);
    p.seed = 2;
    auto wb = makeSynthetic(p);
    const std::vector<const Workload *> workloads{wa.get(), wb.get()};
    const std::vector<ProtocolName> protos{ProtocolName::MESI,
                                           ProtocolName::DBypFull};

    Sweep serial, parallel;
    {
        EnvVar jobs("WASTESIM_JOBS", "1");
        serial = runSweep(workloads, protos, SimParams::scaled());
    }
    {
        EnvVar jobs("WASTESIM_JOBS", "4");
        parallel = runSweep(workloads, protos, SimParams::scaled());
    }

    ASSERT_EQ(serial.benchNames, parallel.benchNames);
    ASSERT_EQ(serial.protoNames, parallel.protoNames);
    for (std::size_t b = 0; b < serial.results.size(); ++b) {
        for (std::size_t pr = 0; pr < serial.results[b].size(); ++pr) {
            const RunResult &x = serial.results[b][pr];
            const RunResult &y = parallel.results[b][pr];
            EXPECT_EQ(x.cycles, y.cycles) << b << "," << pr;
            EXPECT_EQ(x.traffic.total(), y.traffic.total())
                << b << "," << pr;
            EXPECT_EQ(x.messages, y.messages) << b << "," << pr;
        }
    }
}

} // namespace wastesim
