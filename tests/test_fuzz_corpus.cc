/** Regression-corpus replay: every committed tests/corpus/*.scn
 *  scenario re-runs under the invariant checker and must match its
 *  pinned verdict (and, where pinned, its exact result CRC).  A
 *  failure here means a behavior change reached a configuration the
 *  fuzzer once flagged — regenerate the pins only if the change is
 *  intentional. */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/campaign.hh"

namespace wastesim
{

namespace
{

std::vector<std::string>
corpusFiles()
{
    const std::filesystem::path dir =
        std::filesystem::path(WASTESIM_SOURCE_DIR) / "tests" / "corpus";
    std::vector<std::string> out;
    if (!std::filesystem::exists(dir))
        return out;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".scn")
            out.push_back(e.path().string());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

TEST(Corpus, CommittedScenariosExist)
{
    // The corpus is part of the repo's regression surface; an empty
    // directory means the harness is silently testing nothing.
    EXPECT_FALSE(corpusFiles().empty())
        << "no .scn files under tests/corpus";
}

TEST(Corpus, EveryCommittedScenarioReplaysToItsPinnedVerdict)
{
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        CorpusEntry e;
        std::string err;
        ASSERT_TRUE(readCorpusFile(path, e, &err)) << err;
        EXPECT_TRUE(replayCorpusEntry(e, 500'000'000ULL, &err))
            << e.scenarioLine << "\n" << err;
    }
}

} // namespace wastesim
