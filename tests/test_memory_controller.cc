/** Unit tests: memory controller filtering, Flex/Excess, dual
 *  delivery, bypass. */

#include <gtest/gtest.h>

#include "common/topology.hh"

#include "dram/memory_controller.hh"
#include "noc/network.hh"
#include "profile/mem_profiler.hh"
#include "profile/traffic.hh"
#include "sim/event_queue.hh"

namespace wastesim
{

namespace
{

class Sink : public MessageHandler
{
  public:
    void
    handle(Message msg) override
    {
        received.push_back(std::move(msg));
    }

    std::vector<Message> received;
};

struct McHarness
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net{eq, tr};
    DramChannel dram{eq, DramMap{}};
    MemProfiler prof;
    Sink l1sink, l2sink;
    bool presentInL2 = false;
    MemoryController mc{0,    eq,   net, dram, prof,
                        [this](Addr, unsigned) { return presentInL2; }};

    /** Channel-0 line. */
    static Addr
    line(Addr n)
    {
        return n * numMemCtrls * bytesPerLine;
    }

    McHarness()
    {
        net.attach(mcEp(0), &mc);
        // Home slice of line(0) is slice 0.
        net.attach(l2Ep(Topology{}.homeSlice(line(0))), &l2sink);
        net.attach(l1Ep(5), &l1sink);
    }

    Message
    readReq(WordMask want, unsigned aux = 0,
            WordMask filter = WordMask::none())
    {
        Message m;
        m.kind = MsgKind::MemRead;
        m.src = l2Ep(Topology{}.homeSlice(line(0)));
        m.dst = mcEp(0);
        m.line = line(0);
        m.requester = 5;
        m.cls = TrafficClass::Load;
        m.ctl = CtlType::ReqCtl;
        m.aux = aux;
        LineChunk c(line(0));
        c.want = want;
        c.dirty = filter;
        m.chunks.push_back(c);
        return m;
    }
};

} // namespace

TEST(MemoryController, FullLineReadToL2)
{
    McHarness h;
    h.net.send(h.readReq(WordMask::full()));
    h.eq.run();
    ASSERT_EQ(h.l2sink.received.size(), 1u);
    EXPECT_TRUE(h.l1sink.received.empty());
    const Message &resp = h.l2sink.received[0];
    EXPECT_EQ(resp.kind, MsgKind::MemData);
    EXPECT_EQ(resp.words(), 16u);
    EXPECT_EQ(h.mc.wordsSent(), 16u);
    EXPECT_GT(resp.tMemDone, 0u);
    EXPECT_EQ(h.prof.numInstances(), 16u);
}

TEST(MemoryController, DirtyFilterSuppressesWords)
{
    McHarness h;
    h.net.send(h.readReq(WordMask::full(), 0, WordMask::range(0, 4)));
    h.eq.run();
    ASSERT_EQ(h.l2sink.received.size(), 1u);
    EXPECT_EQ(h.l2sink.received[0].words(), 12u);
    EXPECT_EQ(h.mc.excessWords(), 0u); // not flex: no Excess
}

TEST(MemoryController, DualDelivery)
{
    McHarness h;
    h.net.send(h.readReq(WordMask::full(), McFlag::toL1));
    h.eq.run();
    ASSERT_EQ(h.l2sink.received.size(), 1u);
    ASSERT_EQ(h.l1sink.received.size(), 1u);
    // One instance per word, shared between the two copies.
    EXPECT_EQ(h.prof.numInstances(), 16u);
    EXPECT_EQ(h.l1sink.received[0].chunks[0].memRef,
              h.l2sink.received[0].chunks[0].memRef);
}

TEST(MemoryController, BypassGoesToL1Only)
{
    McHarness h;
    h.net.send(h.readReq(WordMask::full(), McFlag::bypassL2));
    h.eq.run();
    EXPECT_TRUE(h.l2sink.received.empty());
    ASSERT_EQ(h.l1sink.received.size(), 1u);
    EXPECT_TRUE(h.l1sink.received[0].flag);
}

TEST(MemoryController, FlexDropsExcessWords)
{
    McHarness h;
    h.net.send(h.readReq(WordMask::range(0, 6), McFlag::flex));
    h.eq.run();
    ASSERT_EQ(h.l2sink.received.size(), 1u);
    EXPECT_EQ(h.l2sink.received[0].words(), 6u);
    EXPECT_EQ(h.mc.excessWords(), 10u);
    const auto c = h.prof.finalize();
    EXPECT_EQ(c[WasteCat::Excess], 10.0);
}

TEST(MemoryController, FlexSameRowRuleDropsFarChunks)
{
    McHarness h;
    Message m = h.readReq(WordMask::range(0, 4), McFlag::flex);
    // Second chunk in the same row: kept.
    LineChunk near_chunk(McHarness::line(1));
    near_chunk.want = WordMask::range(0, 4);
    m.chunks.push_back(near_chunk);
    // Third chunk in a different row: dropped.
    DramMap map;
    LineChunk far_chunk(McHarness::line(map.timing.linesPerRow));
    far_chunk.want = WordMask::range(0, 4);
    m.chunks.push_back(far_chunk);

    h.net.send(std::move(m));
    h.eq.run();
    ASSERT_EQ(h.l2sink.received.size(), 1u);
    EXPECT_EQ(h.l2sink.received[0].chunks.size(), 2u);
    EXPECT_EQ(h.mc.droppedChunks(), 1u);
    EXPECT_EQ(h.dram.reads(), 2u); // far line never read
}

TEST(MemoryController, PresenceMarksFetchWaste)
{
    McHarness h;
    h.presentInL2 = true;
    h.net.send(h.readReq(WordMask::full()));
    h.eq.run();
    const auto c = h.prof.finalize();
    EXPECT_EQ(c[WasteCat::Fetch], 16.0);
}

TEST(MemoryController, WritesReachDram)
{
    McHarness h;
    Message m;
    m.kind = MsgKind::MemWrite;
    m.src = l2Ep(Topology{}.homeSlice(McHarness::line(0)));
    m.dst = mcEp(0);
    m.line = McHarness::line(0);
    m.cls = TrafficClass::Writeback;
    m.ctl = CtlType::WbControl;
    LineChunk c(McHarness::line(0), WordMask::range(0, 5));
    c.dirty = WordMask::range(0, 5);
    m.chunks.push_back(c);
    h.net.send(std::move(m));
    h.eq.run();
    EXPECT_EQ(h.dram.writes(), 1u);
    EXPECT_EQ(h.mc.wordsWritten(), 5u); // partial write support
}

TEST(MemoryController, ExclFlagPropagatesToResponse)
{
    McHarness h;
    h.net.send(h.readReq(WordMask::full(),
                         McFlag::toL1 | McFlag::bypassL2 |
                             McFlag::excl));
    h.eq.run();
    ASSERT_EQ(h.l1sink.received.size(), 1u);
    EXPECT_TRUE(h.l1sink.received[0].aux & McFlag::excl);
}

TEST(MemoryController, TimingStampsOrdered)
{
    McHarness h;
    h.net.send(h.readReq(WordMask::full()));
    h.eq.run();
    const Message &resp = h.l2sink.received.at(0);
    EXPECT_LE(resp.tMcArrive, resp.tMemDone);
    EXPECT_GT(resp.tMcArrive, 0u);
}

} // namespace wastesim
