/** Unit tests: the L1/L2 word-instance waste FSMs (Figs. 4.1/4.2). */

#include <gtest/gtest.h>

#include "profile/word_profiler.hh"

namespace wastesim
{

namespace
{

WasteCounts
finalizeCounts(WordProfiler &p)
{
    TrafficStats t;
    return p.finalize(t);
}

} // namespace

TEST(WordProfiler, LoadClassifiesUsed)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Load);
    p.load(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Used], 1.0);
    EXPECT_EQ(c.waste(), 0.0);
}

TEST(WordProfiler, OverwriteBeforeUseIsWriteWaste)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Store);
    p.store(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Write], 1.0);
}

TEST(WordProfiler, UsedThenStoreStaysUsed)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Load);
    p.load(100);
    p.store(100); // first classification wins
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Used], 1.0);
    EXPECT_EQ(c[WasteCat::Write], 0.0);
}

TEST(WordProfiler, ArriveWhilePresentIsFetchWaste)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Load);
    p.arrive(100, TrafficClass::Load); // duplicate arrival
    p.load(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Fetch], 1.0);
    EXPECT_EQ(c[WasteCat::Used], 1.0);
}

TEST(WordProfiler, EvictBeforeUse)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Load);
    p.evict(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Evict], 1.0);
    EXPECT_FALSE(p.present(100));
}

TEST(WordProfiler, InvalidateBeforeUseL1)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Load);
    p.invalidate(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Invalidate], 1.0);
}

TEST(WordProfiler, L2HasNoInvalidateCategory)
{
    // Fig. 4.2: the L2 FSM folds invalidation into eviction.
    WordProfiler p(WordProfiler::Level::L2);
    p.arrive(100, TrafficClass::Load);
    p.invalidate(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Evict], 1.0);
    EXPECT_EQ(c[WasteCat::Invalidate], 0.0);
}

TEST(WordProfiler, UnevictedAtEnd)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Load);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Unevicted], 1.0);
}

TEST(WordProfiler, StoreAllocatesUntracked)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.store(100); // write-validate allocation, no record
    EXPECT_TRUE(p.present(100));
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c.total(), 0.0);
}

TEST(WordProfiler, ArriveOnStoreAllocatedIsFetch)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.store(100);
    p.arrive(100, TrafficClass::Load);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Fetch], 1.0);
}

TEST(WordProfiler, RespUsedMarksL2Reuse)
{
    WordProfiler p(WordProfiler::Level::L2);
    p.arrive(100, TrafficClass::Load);
    p.respUsed(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Used], 1.0);
}

TEST(WordProfiler, OverwriteKeepsPresence)
{
    WordProfiler p(WordProfiler::Level::L2);
    p.arrive(100, TrafficClass::Load);
    p.overwrite(100); // L1 writeback data lands on it
    EXPECT_TRUE(p.present(100));
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Write], 1.0);
}

TEST(WordProfiler, ArriveReplaceClosesOldOpensNew)
{
    WordProfiler p(WordProfiler::Level::L2);
    p.arrive(100, TrafficClass::Load);
    const InstId fresh = p.arriveReplace(100, TrafficClass::Load);
    p.addTraffic(fresh, 1.0);
    p.respUsed(100);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Write], 1.0); // the superseded copy
    EXPECT_EQ(c[WasteCat::Used], 1.0);  // the fresh copy, reused
}

TEST(WordProfiler, WriteKillEndsPresence)
{
    WordProfiler p(WordProfiler::Level::L2);
    p.arrive(100, TrafficClass::Load);
    p.writeKill(100);
    EXPECT_FALSE(p.present(100));
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c[WasteCat::Write], 1.0);
}

TEST(WordProfiler, TrafficResolvedByClassification)
{
    WordProfiler p(WordProfiler::Level::L1);
    const InstId used = p.arrive(100, TrafficClass::Load);
    p.addTraffic(used, 2.0);
    p.load(100);
    const InstId wasted = p.arrive(200, TrafficClass::Load);
    p.addTraffic(wasted, 3.0);
    p.evict(200);

    TrafficStats t;
    p.finalize(t);
    EXPECT_DOUBLE_EQ(t.ldRespL1Used, 2.0);
    EXPECT_DOUBLE_EQ(t.ldRespL1Waste, 3.0);
}

TEST(WordProfiler, StoreClassTrafficGoesToStoreBuckets)
{
    WordProfiler p(WordProfiler::Level::L2);
    const InstId i = p.arrive(100, TrafficClass::Store);
    p.addTraffic(i, 4.0);
    TrafficStats t;
    p.finalize(t);
    EXPECT_DOUBLE_EQ(t.stRespL2Waste, 4.0); // Unevicted => waste
}

TEST(WordProfiler, EpochExcludesWarmup)
{
    WordProfiler p(WordProfiler::Level::L1);
    p.arrive(100, TrafficClass::Load);
    p.load(100);
    p.markEpoch();
    p.arrive(200, TrafficClass::Load);
    p.load(200);
    const auto c = finalizeCounts(p);
    EXPECT_EQ(c.total(), 1.0); // only the post-epoch word
}

TEST(WordProfilerDeath, LoadOnAbsentWordPanics)
{
    WordProfiler p(WordProfiler::Level::L1);
    EXPECT_DEATH(p.load(100), "absent");
}

} // namespace wastesim
