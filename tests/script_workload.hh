/**
 * @file
 * Test helper: a Workload whose traces are scripted directly by the
 * test body (and a random-traffic generator for property tests).
 */

#ifndef WASTESIM_TESTS_SCRIPT_WORKLOAD_HH
#define WASTESIM_TESTS_SCRIPT_WORKLOAD_HH

#include "common/rng.hh"
#include "workload/workload.hh"

namespace wastesim
{

/** A workload scripted by hand in a test. */
class ScriptWorkload : public Workload
{
  public:
    std::string name() const override { return "script"; }
    std::string inputDesc() const override { return "scripted"; }

    using Workload::alloc;
    using Workload::barrierAll;
    using Workload::epochAll;
    using Workload::load;
    using Workload::store;
    using Workload::work;

    RegionTable &regionTable() { return regions_; }

    /** Every core ends with a final barrier (keeps drains clean). */
    void finish() { barrierAll({}); }
};

/**
 * Random DRF-ish workload: each core owns a private slab and all
 * cores share a read-mostly slab; phases separated by barriers with
 * self-invalidation of the shared region.
 */
inline std::unique_ptr<ScriptWorkload>
makeRandomWorkload(std::uint64_t seed, unsigned phases = 3,
                   unsigned ops_per_phase = 300)
{
    auto wl = std::make_unique<ScriptWorkload>();
    const Addr shared = wl->alloc(64 * 1024);
    Region shared_r;
    shared_r.name = "shared";
    shared_r.base = shared;
    shared_r.size = 64 * 1024;
    const RegionId shared_id = wl->regionTable().add(shared_r);

    std::vector<Addr> priv(numTiles);
    for (CoreId c = 0; c < numTiles; ++c) {
        priv[c] = wl->alloc(16 * 1024);
        Region r;
        r.name = "priv" + std::to_string(c);
        r.base = priv[c];
        r.size = 16 * 1024;
        wl->regionTable().add(r);
    }

    Rng rng(seed);
    for (unsigned ph = 0; ph < phases; ++ph) {
        // Writer of the shared slab this phase (keeps it race free).
        const CoreId writer = static_cast<CoreId>(ph % numTiles);
        for (CoreId c = 0; c < numTiles; ++c) {
            Rng crng(seed ^ (c * 0x9e3779b9ULL) ^ ph);
            for (unsigned i = 0; i < ops_per_phase; ++i) {
                const bool use_shared = crng.chance(0.4);
                const Addr base = use_shared ? shared : priv[c];
                const Addr size = use_shared ? 64 * 1024 : 16 * 1024;
                const Addr a =
                    base + (crng.below(size / 4)) * bytesPerWord;
                if (use_shared) {
                    if (c == writer && crng.chance(0.3))
                        wl->store(c, a);
                    else
                        wl->load(c, a);
                } else {
                    if (crng.chance(0.5))
                        wl->store(c, a);
                    else
                        wl->load(c, a);
                }
                if (crng.chance(0.1))
                    wl->work(c, 1 + static_cast<unsigned>(
                                     crng.below(5)));
            }
        }
        wl->barrierAll({shared_id});
    }
    return wl;
}

} // namespace wastesim

#endif // WASTESIM_TESTS_SCRIPT_WORKLOAD_HH
