/**
 * Steady-state allocation-freedom tests.
 *
 * The PR-3 kernel contract: once warm, the EventQueue, Network::send
 * and Message paths perform zero heap allocations.  This binary
 * replaces global operator new/delete with counting versions and
 * asserts the counter does not move across a measured steady-state
 * window (pools at their high-water mark, callbacks within the inline
 * capture budget, payloads within the inline chunk capacity).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "noc/network.hh"
#include "obs/debug.hh"
#include "obs/observer.hh"
#include "profile/traffic.hh"
#include "protocol/message.hh"
#include "sim/event_queue.hh"

namespace
{

std::size_t g_news = 0;

} // namespace

// Counting global allocator (per-binary replacement).
void *
operator new(std::size_t n)
{
    ++g_news;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_news;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace wastesim
{

namespace
{

/** Swallow delivered messages. */
class Sink : public MessageHandler
{
  public:
    void handle(Message) override { ++received; }
    std::uint64_t received = 0;
};

Message
makeDataMessage(unsigned src, unsigned dst)
{
    Message m;
    m.kind = MsgKind::Data;
    m.src = l1Ep(src);
    m.dst = l1Ep(dst);
    m.line = 0x1000 + dst * bytesPerLine;
    m.cls = TrafficClass::Load;
    m.ctl = CtlType::RespCtl;
    LineChunk chunk(m.line, WordMask::full());
    chunk.dirty = WordMask::range(0, 4);
    m.chunks.push_back(chunk);
    return m;
}

} // namespace

TEST(AllocFree, EventQueueSteadyState)
{
    EventQueue eq;

    // Warm-up: drive the pool and the overflow heap to their
    // high-water marks with the same pattern measured below.
    struct Actor
    {
        EventQueue *eq;
        std::uint64_t remaining;
        Addr line;   // 48 bytes of captured state: the common
        WordMask m;  // "this + address + mask" protocol closure.

        void
        operator()()
        {
            if (remaining == 0)
                return;
            static constexpr Tick mix[] = {0, 1, 8, 20, 500, 20000};
            const Tick d = mix[remaining % 6];
            eq->schedule(d, Actor{eq, remaining - 1, line + 64, m});
        }
    };
    for (unsigned a = 0; a < 64; ++a)
        eq.schedule(a, Actor{&eq, 2000, 0, WordMask::full()});
    eq.run();

    // Steady state: an identical load must not allocate at all.
    const std::size_t before = g_news;
    for (unsigned a = 0; a < 64; ++a)
        eq.schedule(a, Actor{&eq, 2000, 0, WordMask::full()});
    eq.run();
    const std::size_t after = g_news;
    EXPECT_EQ(after - before, 0u)
        << "EventQueue steady state performed heap allocations";
}

TEST(AllocFree, NetworkSendSteadyState)
{
    EventQueue eq;
    TrafficRecorder traffic;
    Network net(eq, traffic);
    Sink sink;
    for (unsigned t = 0; t < numTiles; ++t)
        net.attach(l1Ep(t), &sink);

    auto blast = [&](unsigned msgs) {
        for (unsigned i = 0; i < msgs; ++i)
            net.send(makeDataMessage(i % numTiles,
                                     (i * 7 + 3) % numTiles));
        eq.run();
    };

    blast(512); // warm the message pool and the event arena

    const std::size_t before = g_news;
    blast(512);
    const std::size_t after = g_news;
    EXPECT_EQ(after - before, 0u)
        << "Network::send steady state performed heap allocations";
    EXPECT_EQ(sink.received, 1024u);
}

TEST(AllocFree, DisabledObservabilityAllocatesNothing)
{
    // The observability sites compiled into the hot path (DPRINTF in
    // Network::send, the thread-local observer check around timeline
    // spans) must cost nothing when disabled: after a round with
    // tracing ON, flags off + no observer must be as allocation-free
    // as a build without the instrumentation.
    EventQueue eq;
    TrafficRecorder traffic;
    Network net(eq, traffic);
    Sink sink;
    for (unsigned t = 0; t < numTiles; ++t)
        net.attach(l1Ep(t), &sink);

    auto blast = [&](unsigned msgs) {
        for (unsigned i = 0; i < msgs; ++i)
            net.send(makeDataMessage(i % numTiles,
                                     (i * 7 + 3) % numTiles));
        eq.run();
    };

    blast(512); // warm pools

    // One traced round proves the sites are live in this binary, not
    // compiled out.
    ASSERT_TRUE(debug::setFlags("noc"));
    std::size_t traced = 0;
    debug::sink = [&](const std::string &) { ++traced; };
    blast(16);
    EXPECT_GT(traced, 0u) << "DPRINTF(Noc) sites not reached";
    debug::clearFlags();
    debug::sink = nullptr;

    ASSERT_EQ(simObserver(), nullptr);
    const std::size_t before = g_news;
    blast(512);
    const std::size_t after = g_news;
    EXPECT_EQ(after - before, 0u)
        << "disabled observability performed heap allocations";
}

TEST(AllocFree, MessageCopyAndMove)
{
    Message m = makeDataMessage(0, 5);
    for (unsigned i = 1; i < ChunkVec::capacity(); ++i)
        m.chunks.emplace_back(0x8000 + i * bytesPerLine,
                              WordMask::single(i % wordsPerLine));

    const std::size_t before = g_news;
    Message copy = m;              // full-capacity copy
    Message moved = std::move(copy);
    copy = moved;                  // copy-assign over moved-from
    moved = std::move(copy);       // move-assign back
    const std::size_t after = g_news;
    EXPECT_EQ(after - before, 0u)
        << "Message copy/move allocated despite inline payload";
    EXPECT_EQ(moved.chunks.size(), ChunkVec::capacity());
}

} // namespace wastesim
