/** Unit tests: flit-hop bucket accounting. */

#include <gtest/gtest.h>

#include "profile/traffic.hh"

namespace wastesim
{

TEST(Traffic, ControlBuckets)
{
    TrafficRecorder r;
    r.control(TrafficClass::Load, CtlType::ReqCtl, 1.0, 4);
    r.control(TrafficClass::Load, CtlType::RespCtl, 1.0, 2);
    r.control(TrafficClass::Store, CtlType::ReqCtl, 1.0, 3);
    r.control(TrafficClass::Writeback, CtlType::WbControl, 1.0, 5);
    const auto &s = r.stats();
    EXPECT_DOUBLE_EQ(s.ldReqCtl, 4.0);
    EXPECT_DOUBLE_EQ(s.ldRespCtl, 2.0);
    EXPECT_DOUBLE_EQ(s.stReqCtl, 3.0);
    EXPECT_DOUBLE_EQ(s.wbControl, 5.0);
}

TEST(Traffic, OverheadSubtypes)
{
    TrafficRecorder r;
    r.control(TrafficClass::Overhead, CtlType::OhUnblock, 1.0, 1);
    r.control(TrafficClass::Overhead, CtlType::OhWbCtl, 1.0, 2);
    r.control(TrafficClass::Overhead, CtlType::OhInv, 1.0, 3);
    r.control(TrafficClass::Overhead, CtlType::OhAck, 1.0, 4);
    r.control(TrafficClass::Overhead, CtlType::OhNack, 1.0, 5);
    r.control(TrafficClass::Overhead, CtlType::OhBloom, 1.0, 6);
    const auto &s = r.stats();
    EXPECT_DOUBLE_EQ(s.overhead(), 21.0);
    EXPECT_DOUBLE_EQ(s.ohUnblock, 1.0);
    EXPECT_DOUBLE_EQ(s.ohBloom, 6.0);
}

TEST(Traffic, WritebackDataSplit)
{
    TrafficRecorder r;
    // 8 dirty + 8 clean words over 4 hops: one word = 1/4 flit.
    r.wbData(false, 8, 8, 4);
    EXPECT_DOUBLE_EQ(r.stats().wbL2Used, 8.0);
    EXPECT_DOUBLE_EQ(r.stats().wbL2Waste, 8.0);
    r.wbData(true, 4, 0, 2);
    EXPECT_DOUBLE_EQ(r.stats().wbMemUsed, 2.0);
    EXPECT_DOUBLE_EQ(r.stats().wbMemWaste, 0.0);
}

TEST(Traffic, TotalsAddUp)
{
    TrafficStats s;
    s.ldReqCtl = 1;
    s.stRespL1Used = 2;
    s.wbControl = 3;
    s.ohNack = 4;
    EXPECT_DOUBLE_EQ(s.total(), 10.0);
    EXPECT_DOUBLE_EQ(s.load(), 1.0);
    EXPECT_DOUBLE_EQ(s.store(), 2.0);
    EXPECT_DOUBLE_EQ(s.writeback(), 3.0);
    EXPECT_DOUBLE_EQ(s.overhead(), 4.0);
}

TEST(Traffic, WasteDataSumsWasteBucketsOnly)
{
    TrafficStats s;
    s.ldRespL1Used = 10;
    s.ldRespL1Waste = 1;
    s.stRespL2Waste = 2;
    s.wbMemWaste = 3;
    s.ldReqCtl = 100; // control is not "waste data"
    EXPECT_DOUBLE_EQ(s.wasteData(), 6.0);
}

TEST(Traffic, EpochResets)
{
    TrafficRecorder r;
    r.control(TrafficClass::Load, CtlType::ReqCtl, 1.0, 4);
    r.addRaw(5.0);
    r.markEpoch();
    EXPECT_DOUBLE_EQ(r.stats().total(), 0.0);
    EXPECT_DOUBLE_EQ(r.rawFlitHops(), 0.0);
}

TEST(Traffic, AccumulateOperator)
{
    TrafficStats a, b;
    a.ldReqCtl = 1;
    b.ldReqCtl = 2;
    b.ohInv = 3;
    a += b;
    EXPECT_DOUBLE_EQ(a.ldReqCtl, 3.0);
    EXPECT_DOUBLE_EQ(a.ohInv, 3.0);
}

} // namespace wastesim
