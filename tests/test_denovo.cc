/** Integration tests: DeNovo end-to-end flows through a full System. */

#include <gtest/gtest.h>

#include "protocol/denovo/denovo_l1.hh"
#include "script_workload.hh"
#include "system/system.hh"

namespace wastesim
{

namespace
{

SimParams
smallParams()
{
    return SimParams::scaled();
}

const DenovoL1 &
dnL1Of(System &sys, CoreId c)
{
    return dynamic_cast<const DenovoL1 &>(sys.l1(c));
}

RunResult
runWl(ProtocolName p, const Workload &wl)
{
    System sys(p, wl, smallParams());
    return sys.run();
}

} // namespace

TEST(DeNovo, WriteValidateStoresDoNotFetchAtL1)
{
    // A cold store allocates locally; only the L2's fetch-on-write
    // (baseline) touches memory, and the L1 never receives data.
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    wl.store(0, a);
    wl.finish();

    const RunResult r = runWl(ProtocolName::DeNovo, wl);
    EXPECT_DOUBLE_EQ(r.traffic.stRespL1Used + r.traffic.stRespL1Waste,
                     0.0);
    EXPECT_EQ(r.l1Waste.total(), 0.0); // nothing fetched into the L1
    // Baseline L2 fetch-on-write: one memory read, profiled as
    // store-class L2 data.
    EXPECT_EQ(r.dramReads, 1u);
    EXPECT_GT(r.traffic.stRespL2Used + r.traffic.stRespL2Waste, 0.0);
}

TEST(DeNovo, L2WriteValidateEliminatesFetchOnWrite)
{
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    wl.store(0, a);
    wl.finish();

    const RunResult r = runWl(ProtocolName::DValidateL2, wl);
    EXPECT_EQ(r.dramReads, 0u); // no fetch at all
    EXPECT_DOUBLE_EQ(r.traffic.stRespL2Used + r.traffic.stRespL2Waste,
                     0.0);
}

TEST(DeNovo, RegistrationTraffic)
{
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    wl.store(0, a);
    wl.finish();

    const RunResult r = runWl(ProtocolName::DValidateL2, wl);
    // One registration request + ack, both control-sized.
    EXPECT_GT(r.traffic.stReqCtl, 0.0);
    EXPECT_GT(r.traffic.stRespCtl, 0.0);
    // DeNovo overhead is (near) zero: no unblocks, invs, acks.
    EXPECT_DOUBLE_EQ(r.traffic.ohUnblock, 0.0);
    EXPECT_DOUBLE_EQ(r.traffic.ohInv, 0.0);
}

TEST(DeNovo, WriteCombiningBatchesLineRegistrations)
{
    // 16 stores to one line: one combined registration message.
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    for (unsigned w = 0; w < wordsPerLine; ++w)
        wl.store(0, a + w * bytesPerWord);
    wl.finish();

    ScriptWorkload wl2;
    const Addr b = wl2.alloc(4096);
    for (unsigned i = 0; i < wordsPerLine; ++i)
        wl2.store(0, b + i * bytesPerLine); // 16 different lines
    wl2.finish();

    const RunResult combined = runWl(ProtocolName::DValidateL2, wl);
    const RunResult scattered = runWl(ProtocolName::DValidateL2, wl2);
    EXPECT_LT(combined.traffic.stReqCtl, scattered.traffic.stReqCtl);
}

TEST(DeNovo, ReaderGetsForwardFromRegistrant)
{
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    wl.store(0, a);
    wl.barrierAll({});
    wl.load(1, a);
    wl.finish();

    const RunResult r = runWl(ProtocolName::DValidateL2, wl);
    // The registered word comes from core 0's copy; only the other
    // 15 words of the line are fetched from memory (the MC's dirty
    // filter excludes the registered one).
    EXPECT_EQ(r.wordsFromMemory, 15u);
    EXPECT_GT(r.traffic.ldRespL1Used, 0.0);
}

TEST(DeNovo, SelfInvalidationDropsPhaseData)
{
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    Region reg;
    reg.name = "shared";
    reg.base = a;
    reg.size = 4096;
    const RegionId rid = wl.regionTable().add(reg);

    wl.load(1, a); // core 1 caches the word
    wl.barrierAll({rid});
    wl.finish();

    System sys(ProtocolName::DValidateL2, wl, smallParams());
    const RunResult r = sys.run();
    EXPECT_GT(r.selfInvalidations, 0u);
    // Core 1's copy is gone after the barrier.
    const CacheLine *cl = dnL1Of(sys, 1).array().find(lineAddr(a));
    EXPECT_TRUE(!cl || !cl->valid ||
                !cl->validWords.test(wordIndex(a)));
    EXPECT_GT(r.l1Waste[WasteCat::Invalidate] +
                  r.l1Waste[WasteCat::Used],
              0.0);
}

TEST(DeNovo, RegistrationStealsStaleCopy)
{
    // Cross-phase write to a word another core registered earlier.
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    wl.store(0, a);
    wl.barrierAll({});
    wl.store(1, a);
    wl.finish();

    System sys(ProtocolName::DValidateL2, wl, smallParams());
    sys.run();
    sys.checkInvariants(); // word registered to exactly one L1
    const CacheLine *c0 = dnL1Of(sys, 0).array().find(lineAddr(a));
    EXPECT_TRUE(!c0 || !c0->regWords.test(wordIndex(a)));
}

TEST(DeNovo, EvictionWritesBackDirtyWordsOnly)
{
    // Dirty evictions carry only written words (no clean filler).
    ScriptWorkload wl;
    const Addr a = wl.alloc(64 * 1024);
    for (unsigned i = 0; i < 128; ++i)
        wl.store(0, a + static_cast<Addr>(i) * bytesPerLine); // 1 word
    wl.finish();

    const RunResult r = runWl(ProtocolName::DValidateL2, wl);
    EXPECT_GT(r.traffic.wbL2Used, 0.0);
    EXPECT_DOUBLE_EQ(r.traffic.wbL2Waste, 0.0);
}

TEST(DeNovo, DirtyWordsOnlyMemWriteback)
{
    // Push dirty words through the L2 to memory; with DValidateL2 the
    // memory writeback carries no unmodified words.
    ScriptWorkload wl;
    const Addr a = wl.alloc(2 * 1024 * 1024);
    for (Addr off = 0; off < 2 * 1024 * 1024; off += bytesPerLine)
        wl.store(0, a + off);
    wl.finish();

    const RunResult base = runWl(ProtocolName::DeNovo, wl);
    const RunResult opt = runWl(ProtocolName::DValidateL2, wl);
    EXPECT_GT(base.traffic.wbMemWaste, 0.0); // full-line WBs
    EXPECT_DOUBLE_EQ(opt.traffic.wbMemWaste, 0.0);
}

TEST(DeNovo, FlexFetchesOnlyUsedFields)
{
    auto build = [](ScriptWorkload &wl, bool flex) {
        const Addr a = wl.alloc(64 * 1024);
        Region r;
        r.name = "structs";
        r.base = a;
        r.size = 64 * 1024;
        if (flex) {
            r.flex = true;
            r.strideWords = 16;
            r.usedFields = {0, 1, 2, 3}; // 4 of 16 words used
        }
        wl.regionTable().add(r);
        for (unsigned s = 0; s < 64; ++s)
            for (unsigned f = 0; f < 4; ++f)
                wl.load(0, a + (s * 16 + f) * bytesPerWord);
        wl.finish();
    };

    ScriptWorkload plain, flexed;
    build(plain, false);
    build(flexed, true);
    const RunResult base = runWl(ProtocolName::DeNovo, plain);
    const RunResult flex = runWl(ProtocolName::DFlexL1, flexed);
    // Flex avoids moving the 12 unused words of each struct on chip.
    EXPECT_LT(flex.traffic.ldRespL1Used + flex.traffic.ldRespL1Waste,
              base.traffic.ldRespL1Used + base.traffic.ldRespL1Waste);
    EXPECT_LT(flex.l1Waste[WasteCat::Evict] +
                  flex.l1Waste[WasteCat::Unevicted],
              base.l1Waste[WasteCat::Evict] +
                  base.l1Waste[WasteCat::Unevicted]);
}

TEST(DeNovo, ResponseBypassKeepsDataOutOfL2)
{
    auto build = [](ScriptWorkload &wl, bool bypass) {
        const Addr a = wl.alloc(256 * 1024);
        Region r;
        r.name = "stream";
        r.base = a;
        r.size = 256 * 1024;
        r.bypass = bypass;
        wl.regionTable().add(r);
        // Stream it once.
        for (Addr off = 0; off < 256 * 1024; off += bytesPerWord)
            wl.load(0, a + off);
        wl.finish();
    };

    ScriptWorkload cached, bypassed;
    build(cached, false);
    build(bypassed, true);
    const RunResult base = runWl(ProtocolName::DFlexL2, cached);
    const RunResult byp = runWl(ProtocolName::DBypL2, bypassed);
    // Bypassed streams leave (almost) nothing in the L2.
    EXPECT_LT(byp.l2Waste.total(), base.l2Waste.total() * 0.2);
}

TEST(DeNovo, RequestBypassGoesStraightToMemory)
{
    ScriptWorkload wl;
    const Addr a = wl.alloc(256 * 1024);
    Region r;
    r.name = "stream";
    r.base = a;
    r.size = 256 * 1024;
    r.bypass = true;
    wl.regionTable().add(r);
    for (Addr off = 0; off < 256 * 1024; off += bytesPerWord)
        wl.load(0, a + off);
    wl.finish();

    System sys(ProtocolName::DBypFull, wl, smallParams());
    const RunResult r2 = sys.run();
    EXPECT_GT(r2.bypassDirect, 0u);
    EXPECT_GT(r2.traffic.ohBloom, 0.0); // filter copy traffic
    // Direct requests save load request flit-hops vs. DBypL2.
    System sys2(ProtocolName::DBypL2, wl, smallParams());
    const RunResult base = sys2.run();
    EXPECT_LT(r2.traffic.ldReqCtl, base.traffic.ldReqCtl);
}

TEST(DeNovo, RequestBypassSafety)
{
    // A line with dirty data on-chip must NOT be fetched from memory
    // even in a bypass region: the Bloom filter routes it via the L2.
    ScriptWorkload wl;
    const Addr a = wl.alloc(4096);
    Region r;
    r.name = "byp";
    r.base = a;
    r.size = 4096;
    r.bypass = true;
    wl.regionTable().add(r);

    wl.store(0, a);
    wl.barrierAll({});
    wl.load(1, a); // must see core 0's registered copy
    wl.finish();

    System sys(ProtocolName::DBypFull, wl, smallParams());
    const RunResult res = sys.run();
    // The registered word itself must come from the registrant's
    // copy, never from memory: the Bloom filter forces the request
    // through the L2, whose dirty filter excludes the word.
    EXPECT_LE(res.wordsFromMemory, 15u);
    EXPECT_GT(res.traffic.ldRespL1Used, 0.0);
}

TEST(DeNovo, BarnesStyleFlexSavesTraffic)
{
    // Cross-check the whole stack on the actual barnes workload.
    auto wl = makeBenchmark(BenchmarkName::Barnes);
    const RunResult base = runWl(ProtocolName::DeNovo, *wl);
    const RunResult flex = runWl(ProtocolName::DFlexL1, *wl);
    EXPECT_LT(flex.traffic.load(), base.traffic.load());
}

} // namespace wastesim
