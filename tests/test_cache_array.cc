/** Unit tests: set-associative array, LRU, busy-line handling. */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"

namespace wastesim
{

namespace
{

Addr
lineAt(unsigned set, unsigned tag, unsigned sets, unsigned div = 1)
{
    return (static_cast<Addr>(tag) * sets + set) * div * bytesPerLine;
}

} // namespace

TEST(CacheArray, FindAfterFill)
{
    CacheArray a(4, 2);
    const Addr la = lineAt(1, 0, 4);
    EXPECT_EQ(a.find(la), nullptr);
    CacheLine *slot = a.victimFor(la);
    ASSERT_NE(slot, nullptr);
    a.resetTo(*slot, la);
    EXPECT_EQ(a.find(la), slot);
}

TEST(CacheArray, SetIndexing)
{
    CacheArray a(8, 2);
    EXPECT_EQ(a.setIndex(0), 0u);
    EXPECT_EQ(a.setIndex(64), 1u);
    EXPECT_EQ(a.setIndex(8 * 64), 0u);
}

TEST(CacheArray, IndexDivisorSkipsInterleaveBits)
{
    // L2 slices see every 16th 256-byte chunk: index must divide.
    CacheArray a(8, 2, numTiles);
    EXPECT_EQ(a.setIndex(0), a.setIndex(64));
    EXPECT_NE(a.setIndex(0), a.setIndex(16ull * 4 * 64));
}

TEST(CacheArray, LruVictimSelection)
{
    CacheArray a(1, 4);
    std::vector<Addr> lines;
    for (unsigned t = 0; t < 4; ++t) {
        const Addr la = lineAt(0, t, 1);
        lines.push_back(la);
        CacheLine *s = a.victimFor(la);
        a.resetTo(*s, la);
        a.touch(*s);
    }
    // Touch line 0 so line 1 becomes LRU.
    a.touch(*a.find(lines[0]));
    CacheLine *victim = a.victimFor(lineAt(0, 9, 1));
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->line, lines[1]);
}

TEST(CacheArray, InvalidSlotPreferred)
{
    CacheArray a(1, 4);
    for (unsigned t = 0; t < 3; ++t) {
        CacheLine *s = a.victimFor(lineAt(0, t, 1));
        a.resetTo(*s, lineAt(0, t, 1));
        a.touch(*s);
    }
    CacheLine *victim = a.victimFor(lineAt(0, 9, 1));
    ASSERT_NE(victim, nullptr);
    EXPECT_FALSE(victim->valid);
}

TEST(CacheArray, BusyLinesNotVictimized)
{
    CacheArray a(1, 2);
    CacheLine *s0 = a.victimFor(lineAt(0, 0, 1));
    a.resetTo(*s0, lineAt(0, 0, 1));
    s0->busy = true;
    CacheLine *s1 = a.victimFor(lineAt(0, 1, 1));
    a.resetTo(*s1, lineAt(0, 1, 1));

    CacheLine *victim = a.victimFor(lineAt(0, 9, 1));
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim, s1);

    s1->busy = true;
    EXPECT_EQ(a.victimFor(lineAt(0, 9, 1)), nullptr);
}

TEST(CacheArray, InvalidateFreesSlot)
{
    CacheArray a(1, 1);
    CacheLine *s = a.victimFor(lineAt(0, 0, 1));
    a.resetTo(*s, lineAt(0, 0, 1));
    a.invalidate(*s);
    EXPECT_EQ(a.find(lineAt(0, 0, 1)), nullptr);
    EXPECT_FALSE(s->busy);
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    CacheArray a(4, 2);
    for (unsigned i = 0; i < 5; ++i) {
        const Addr la = lineAt(i % 4, i / 4, 4);
        a.resetTo(*a.victimFor(la), la);
    }
    unsigned n = 0;
    a.forEachValid([&](CacheLine &) { ++n; });
    EXPECT_EQ(n, 5u);
}

TEST(CacheLine, ResetClearsState)
{
    CacheLine cl;
    cl.resetTo(128);
    cl.validWords.set(3);
    cl.dirtyWords.set(3);
    cl.regOwner[5] = 2;
    cl.memRef[5] = 77;
    cl.sharers = SharerMask(0xff);
    cl.owner = 3;
    cl.inBloom = true;
    cl.resetTo(256);
    EXPECT_EQ(cl.line, 256u);
    EXPECT_TRUE(cl.valid);
    EXPECT_TRUE(cl.validWords.empty());
    EXPECT_TRUE(cl.dirtyWords.empty());
    EXPECT_EQ(cl.regOwner[5], invalidNode);
    EXPECT_EQ(cl.memRef[5], invalidInst);
    EXPECT_TRUE(cl.sharers.none());
    EXPECT_EQ(cl.owner, invalidNode);
    EXPECT_FALSE(cl.inBloom);
}

TEST(CacheLine, RegisteredMask)
{
    CacheLine cl;
    cl.resetTo(0);
    cl.regOwner[1] = 4;
    cl.regOwner[9] = 7;
    const WordMask m = cl.registeredMask();
    EXPECT_EQ(m.count(), 2u);
    EXPECT_TRUE(m.test(1));
    EXPECT_TRUE(m.test(9));
}

TEST(CacheArrayDeath, NonPowerOfTwoSetsPanics)
{
    EXPECT_DEATH(CacheArray(3, 2), "power of two");
}

} // namespace wastesim
