/** Regression tests: the paper's qualitative claims, asserted over
 *  the full 9-protocol x 6-benchmark sweep.
 *
 *  These are the "shape" guarantees EXPERIMENTS.md documents: who
 *  wins, which optimization applies where, and which traffic
 *  component each one removes.  They pin the reproduction against
 *  accidental regressions. */

#include <gtest/gtest.h>

#include "system/runner.hh"

namespace wastesim
{

namespace
{

/** Run the sweep once for the whole test suite. */
const Sweep &
sweep()
{
    static const Sweep s = runFullSweep(1, SimParams::scaled());
    return s;
}

int
proto(const char *name)
{
    const Sweep &s = sweep();
    for (std::size_t i = 0; i < s.protoNames.size(); ++i)
        if (s.protoNames[i] == name)
            return static_cast<int>(i);
    ADD_FAILURE() << "no protocol " << name;
    return 0;
}

int
bench(const char *name)
{
    const Sweep &s = sweep();
    for (std::size_t i = 0; i < s.benchNames.size(); ++i)
        if (s.benchNames[i] == name)
            return static_cast<int>(i);
    ADD_FAILURE() << "no benchmark " << name;
    return 0;
}

const RunResult &
result(const char *b, const char *p)
{
    return sweep().results[bench(b)][proto(p)];
}

const char *const bypassable[] = {"fluidanimate", "FFT", "radix",
                                  "kD-tree"};

} // namespace

TEST(PaperShapes, DBypFullBeatsMesiEverywhere)
{
    // Abstract: -39.5% average, every app improves (range starts at
    // -22.9%).
    for (const auto &name : sweep().benchNames) {
        const double mesi =
            result(name.c_str(), "MESI").traffic.total();
        const double dn =
            result(name.c_str(), "DBypFull").traffic.total();
        EXPECT_LT(dn, mesi) << name;
    }
}

TEST(PaperShapes, DenovoEliminatesMesiOverheadMessages)
{
    // Section 5.2.4: DeNovo has no unblocks/invalidations/acks.
    for (const auto &name : sweep().benchNames) {
        for (const char *p : {"DeNovo", "DValidateL2", "DBypL2"}) {
            const TrafficStats &t = result(name.c_str(), p).traffic;
            EXPECT_DOUBLE_EQ(t.ohUnblock, 0.0) << name << " " << p;
            EXPECT_DOUBLE_EQ(t.ohInv, 0.0) << name << " " << p;
            EXPECT_DOUBLE_EQ(t.ohAck, 0.0) << name << " " << p;
        }
    }
}

TEST(PaperShapes, MesiOverheadDominatedByUnblocks)
{
    // Section 5.2.4: unblock messages are the largest component.
    double unblock = 0, inv = 0, ack = 0, total = 0;
    for (const auto &name : sweep().benchNames) {
        const TrafficStats &t = result(name.c_str(), "MESI").traffic;
        unblock += t.ohUnblock;
        inv += t.ohInv;
        ack += t.ohAck;
        total += t.overhead();
    }
    EXPECT_GT(unblock, inv);
    EXPECT_GT(unblock, ack);
    EXPECT_GT(unblock / total, 0.3);
}

TEST(PaperShapes, WriteValidateRemovesStoreDataResponses)
{
    // Section 5.2.2: L1 write-validate kills "Resp L1" store data in
    // every DeNovo config; L2 write-validate kills "Resp L2" from
    // DValidateL2 on.
    for (const auto &name : sweep().benchNames) {
        const TrafficStats &dn =
            result(name.c_str(), "DeNovo").traffic;
        EXPECT_DOUBLE_EQ(dn.stRespL1Used + dn.stRespL1Waste, 0.0)
            << name;
        const TrafficStats &dv =
            result(name.c_str(), "DValidateL2").traffic;
        EXPECT_DOUBLE_EQ(dv.stRespL2Used + dv.stRespL2Waste, 0.0)
            << name;
    }
}

TEST(PaperShapes, MMemL1RemovesMesiStoreDataToL2)
{
    // Section 5.2.2: the MemL1 optimization eliminates the L2-bound
    // store fill data.
    for (const auto &name : sweep().benchNames) {
        const TrafficStats &m =
            result(name.c_str(), "MMemL1").traffic;
        EXPECT_DOUBLE_EQ(m.stRespL2Used + m.stRespL2Waste, 0.0)
            << name;
        EXPECT_LE(m.store(),
                  result(name.c_str(), "MESI").traffic.store() + 1e-9)
            << name;
    }
}

TEST(PaperShapes, DirtyWordsOnlyWritebacks)
{
    // Section 5.2.3: DeNovo L1->L2 writebacks carry no clean words;
    // DValidateL2 extends that to memory.
    for (const auto &name : sweep().benchNames) {
        EXPECT_DOUBLE_EQ(
            result(name.c_str(), "DeNovo").traffic.wbL2Waste, 0.0)
            << name;
        EXPECT_DOUBLE_EQ(
            result(name.c_str(), "DValidateL2").traffic.wbMemWaste,
            0.0)
            << name;
    }
}

TEST(PaperShapes, FlexHelpsExactlyBarnesAndKdTree)
{
    // Section 5.2.1: Flex is applicable to barnes and kD-tree only.
    for (const char *b : {"barnes", "kD-tree"}) {
        EXPECT_LT(result(b, "DFlexL1").traffic.load(),
                  result(b, "DeNovo").traffic.load())
            << b;
    }
    for (const char *b : {"fluidanimate", "LU", "FFT", "radix"}) {
        EXPECT_NEAR(result(b, "DFlexL1").traffic.total(),
                    result(b, "DeNovo").traffic.total(),
                    result(b, "DeNovo").traffic.total() * 0.01)
            << b;
    }
}

TEST(PaperShapes, BypassDrainsTheL2OnStreamingApps)
{
    // Section 5.2.1: response bypass slashes the words installed in
    // the L2 for the four bypassable applications.
    for (const char *b : bypassable) {
        const double before = result(b, "DFlexL2").l2Waste.total();
        const double after = result(b, "DBypL2").l2Waste.total();
        EXPECT_LT(after, before * 0.7) << b;
    }
    // ...and does nothing for the others.
    for (const char *b : {"LU", "barnes"}) {
        EXPECT_NEAR(result(b, "DBypL2").traffic.total(),
                    result(b, "DFlexL2").traffic.total(),
                    result(b, "DFlexL2").traffic.total() * 0.01)
            << b;
    }
}

TEST(PaperShapes, RequestBypassSavesLoadRequestControl)
{
    // Section 5.2.1: DBypFull trims request control on bypassable
    // apps (it only saves control-sized messages).
    for (const char *b : bypassable) {
        EXPECT_LE(result(b, "DBypFull").traffic.ldReqCtl,
                  result(b, "DBypL2").traffic.ldReqCtl)
            << b;
        EXPECT_GT(result(b, "DBypFull").bypassDirect, 0u) << b;
    }
}

TEST(PaperShapes, ExcessWasteOnlyWithL2Flex)
{
    // Section 5.3: Excess appears only once Flex extends to memory,
    // and blows up the barnes/kD-tree memory word counts.
    for (const auto &name : sweep().benchNames) {
        for (const char *p :
             {"MESI", "MMemL1", "DeNovo", "DFlexL1", "DValidateL2",
              "DMemL1"}) {
            EXPECT_DOUBLE_EQ(
                result(name.c_str(), p).memWaste[WasteCat::Excess],
                0.0)
                << name << " " << p;
        }
    }
    for (const char *b : {"barnes", "kD-tree"}) {
        EXPECT_GT(result(b, "DFlexL2").memWaste[WasteCat::Excess],
                  0.0)
            << b;
        EXPECT_GT(result(b, "DFlexL2").memWaste.total(),
                  result(b, "DValidateL2").memWaste.total())
            << b;
    }
}

TEST(PaperShapes, RadixStoreControlPathology)
{
    // Section 5.2.2: write-combining splits registrations in radix's
    // permutation, so baseline DeNovo's store *control* traffic is
    // elevated relative to its other components...
    const TrafficStats &dn = result("radix", "DeNovo").traffic;
    EXPECT_GT(dn.stReqCtl + dn.stRespCtl, 0.0);
    // ...while MESI's store traffic is dominated by fetched data.
    const TrafficStats &mesi = result("radix", "MESI").traffic;
    EXPECT_GT(mesi.stRespL1Used + mesi.stRespL1Waste +
                  mesi.stRespL2Used + mesi.stRespL2Waste,
              mesi.stReqCtl + mesi.stRespCtl);
}

TEST(PaperShapes, FalseSharingFreeByConstruction)
{
    // Chapter 2: DeNovo has no invalidation messages at all, so
    // false sharing cannot generate traffic.
    for (const auto &name : sweep().benchNames) {
        EXPECT_DOUBLE_EQ(
            result(name.c_str(), "DBypFull").traffic.ohInv, 0.0)
            << name;
    }
}

TEST(PaperShapes, ResidualWasteIsSingleDigits)
{
    // Abstract: 8.8% of DBypFull's remaining traffic is waste.
    double waste = 0, total = 0;
    for (const auto &name : sweep().benchNames) {
        const TrafficStats &t =
            result(name.c_str(), "DBypFull").traffic;
        waste += t.wasteData();
        total += t.total();
    }
    EXPECT_LT(waste / total, 0.15);
    EXPECT_GT(waste / total, 0.02);
}

} // namespace wastesim
