/** Unit tests: figure renderers on hand-built sweep data. */

#include <gtest/gtest.h>

#include "system/report.hh"

namespace wastesim
{

namespace
{

/** A two-protocol sweep with known numbers. */
Sweep
syntheticSweep()
{
    Sweep s;
    s.benchNames = {"toy"};
    s.protoNames = {"MESI", "DBypFull"};

    RunResult mesi;
    mesi.protocol = "MESI";
    mesi.benchmark = "toy";
    mesi.traffic.ldReqCtl = 10;
    mesi.traffic.ldRespL1Used = 60;
    mesi.traffic.ldRespL1Waste = 30; // LD = 100
    mesi.traffic.stReqCtl = 50;      // ST = 50
    mesi.traffic.wbControl = 25;     // WB = 25
    mesi.traffic.ohUnblock = 25;     // OH = 25 -> total 200
    mesi.l1Waste[WasteCat::Used] = 80;
    mesi.l1Waste[WasteCat::Evict] = 20;
    mesi.l2Waste[WasteCat::Used] = 50;
    mesi.memWaste[WasteCat::Used] = 40;
    mesi.time.busy = 10;
    mesi.time.mem = 90;

    RunResult dn = mesi;
    dn.protocol = "DBypFull";
    dn.traffic = TrafficStats{};
    dn.traffic.ldReqCtl = 10;
    dn.traffic.ldRespL1Used = 60; // LD = 70
    dn.traffic.stReqCtl = 20;     // ST = 20
    dn.traffic.wbControl = 10;    // WB = 10 -> total 100
    dn.time.busy = 10;
    dn.time.mem = 40;

    s.results = {{mesi, dn}};
    return s;
}

} // namespace

TEST(Report, Fig51aNormalizesToMesiTotal)
{
    const std::string out = renderFig51a(syntheticSweep());
    // MESI row: LD 50%, ST 25%, WB 12.5%, OH 12.5%, total 100%.
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("25.0%"), std::string::npos);
    EXPECT_NE(out.find("12.5%"), std::string::npos);
    EXPECT_NE(out.find("100.0%"), std::string::npos);
    // DBypFull total = 100/200 = 50% of MESI.
    EXPECT_NE(out.find("DBypFull"), std::string::npos);
}

TEST(Report, Fig51bNormalizesToMesiLoad)
{
    const std::string out = renderFig51b(syntheticSweep());
    // MESI load: req 10%, L1 used 60%, L1 waste 30% of LD=100.
    EXPECT_NE(out.find("10.0%"), std::string::npos);
    EXPECT_NE(out.find("60.0%"), std::string::npos);
    EXPECT_NE(out.find("30.0%"), std::string::npos);
}

TEST(Report, Fig52ShowsTimeCategories)
{
    const std::string out = renderFig52(syntheticSweep());
    EXPECT_NE(out.find("Compute"), std::string::npos);
    EXPECT_NE(out.find("Sync"), std::string::npos);
    // MESI: busy 10%, mem 90%; DBypFull total 50%.
    EXPECT_NE(out.find("90.0%"), std::string::npos);
    EXPECT_NE(out.find("50.0%"), std::string::npos);
}

TEST(Report, Fig53MemoryIncludesExcessColumn)
{
    const std::string l1 = renderFig53(syntheticSweep(),
                                       WasteLevel::L1);
    const std::string mem = renderFig53(syntheticSweep(),
                                        WasteLevel::Memory);
    EXPECT_EQ(l1.find("Excess"), std::string::npos);
    EXPECT_NE(mem.find("Excess"), std::string::npos);
}

TEST(Report, OverheadHandlesZeroOverhead)
{
    Sweep s = syntheticSweep();
    s.results[0][1].traffic.ohUnblock = 0;
    const std::string out = renderOverheadComposition(s);
    EXPECT_NE(out.find("-"), std::string::npos); // placeholder cells
}

TEST(Report, HeadlineNeedsKeyProtocols)
{
    Sweep s;
    s.benchNames = {"toy"};
    s.protoNames = {"OnlyOne"};
    s.results = {{RunResult{}}};
    const std::string out = renderHeadline(s);
    EXPECT_NE(out.find("lacks"), std::string::npos);
}

TEST(Report, HeadlineComputesReductions)
{
    const std::string out = renderHeadline(syntheticSweep());
    // 100 vs 200 flit-hops: 50% reduction.
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("39.5%"), std::string::npos); // paper column
}

TEST(Report, EmptyBaselineDoesNotDivideByZero)
{
    Sweep s = syntheticSweep();
    s.results[0][0].traffic = TrafficStats{}; // zero MESI traffic
    // Must not crash; all entries become 0%.
    const std::string out = renderFig51a(s);
    EXPECT_FALSE(out.empty());
}

} // namespace wastesim
