/** Unit tests: figure renderers on hand-built sweep data, golden
 *  snapshots over the committed 4x4 sweep cache, and the structured
 *  figure emitters. */

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>

#include "golden_util.hh"
#include "system/report.hh"
#include "system/sweep_engine.hh"

namespace wastesim
{

namespace
{

using testutil::fileBytes;
using testutil::goldenPath;

/** The committed 54-cell golden sweep, assembled from its cache. */
const Sweep &
goldenSweep()
{
    static const Sweep s = [] {
        CellCache cache;
        const bool loaded =
            cache.load(goldenPath("wastesim_sweep_4x4.cache"));
        EXPECT_TRUE(loaded);
        SweepEngine engine(
            SweepSpec::fullGrid(1, SimParams::scaled()));
        Sweep sweep = std::move(engine.run(cache).at(0));
        EXPECT_EQ(engine.cellsComputed(), 0u)
            << "golden cache should cover the full grid";
        return sweep;
    }();
    return s;
}

/** A two-protocol sweep with known numbers. */
Sweep
syntheticSweep()
{
    Sweep s;
    s.benchNames = {"toy"};
    s.protoNames = {"MESI", "DBypFull"};

    RunResult mesi;
    mesi.protocol = "MESI";
    mesi.benchmark = "toy";
    mesi.traffic.ldReqCtl = 10;
    mesi.traffic.ldRespL1Used = 60;
    mesi.traffic.ldRespL1Waste = 30; // LD = 100
    mesi.traffic.stReqCtl = 50;      // ST = 50
    mesi.traffic.wbControl = 25;     // WB = 25
    mesi.traffic.ohUnblock = 25;     // OH = 25 -> total 200
    mesi.l1Waste[WasteCat::Used] = 80;
    mesi.l1Waste[WasteCat::Evict] = 20;
    mesi.l2Waste[WasteCat::Used] = 50;
    mesi.memWaste[WasteCat::Used] = 40;
    mesi.time.busy = 10;
    mesi.time.mem = 90;

    RunResult dn = mesi;
    dn.protocol = "DBypFull";
    dn.traffic = TrafficStats{};
    dn.traffic.ldReqCtl = 10;
    dn.traffic.ldRespL1Used = 60; // LD = 70
    dn.traffic.stReqCtl = 20;     // ST = 20
    dn.traffic.wbControl = 10;    // WB = 10 -> total 100
    dn.time.busy = 10;
    dn.time.mem = 40;

    s.results = {{mesi, dn}};
    return s;
}

} // namespace

TEST(Report, Fig51aNormalizesToMesiTotal)
{
    const std::string out = renderFig51a(syntheticSweep());
    // MESI row: LD 50%, ST 25%, WB 12.5%, OH 12.5%, total 100%.
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("25.0%"), std::string::npos);
    EXPECT_NE(out.find("12.5%"), std::string::npos);
    EXPECT_NE(out.find("100.0%"), std::string::npos);
    // DBypFull total = 100/200 = 50% of MESI.
    EXPECT_NE(out.find("DBypFull"), std::string::npos);
}

TEST(Report, Fig51bNormalizesToMesiLoad)
{
    const std::string out = renderFig51b(syntheticSweep());
    // MESI load: req 10%, L1 used 60%, L1 waste 30% of LD=100.
    EXPECT_NE(out.find("10.0%"), std::string::npos);
    EXPECT_NE(out.find("60.0%"), std::string::npos);
    EXPECT_NE(out.find("30.0%"), std::string::npos);
}

TEST(Report, Fig52ShowsTimeCategories)
{
    const std::string out = renderFig52(syntheticSweep());
    EXPECT_NE(out.find("Compute"), std::string::npos);
    EXPECT_NE(out.find("Sync"), std::string::npos);
    // MESI: busy 10%, mem 90%; DBypFull total 50%.
    EXPECT_NE(out.find("90.0%"), std::string::npos);
    EXPECT_NE(out.find("50.0%"), std::string::npos);
}

TEST(Report, Fig53MemoryIncludesExcessColumn)
{
    const std::string l1 = renderFig53(syntheticSweep(),
                                       WasteLevel::L1);
    const std::string mem = renderFig53(syntheticSweep(),
                                        WasteLevel::Memory);
    EXPECT_EQ(l1.find("Excess"), std::string::npos);
    EXPECT_NE(mem.find("Excess"), std::string::npos);
}

TEST(Report, OverheadHandlesZeroOverhead)
{
    Sweep s = syntheticSweep();
    s.results[0][1].traffic.ohUnblock = 0;
    const std::string out = renderOverheadComposition(s);
    EXPECT_NE(out.find("-"), std::string::npos); // placeholder cells
}

TEST(Report, HeadlineNeedsKeyProtocols)
{
    Sweep s;
    s.benchNames = {"toy"};
    s.protoNames = {"OnlyOne"};
    s.results = {{RunResult{}}};
    const std::string out = renderHeadline(s);
    EXPECT_NE(out.find("lacks"), std::string::npos);
}

TEST(Report, HeadlineComputesReductions)
{
    const std::string out = renderHeadline(syntheticSweep());
    // 100 vs 200 flit-hops: 50% reduction.
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("39.5%"), std::string::npos); // paper column
}

TEST(Report, EmptyBaselineDoesNotDivideByZero)
{
    Sweep s = syntheticSweep();
    s.results[0][0].traffic = TrafficStats{}; // zero MESI traffic
    // Must not crash; all entries become 0%.
    const std::string out = renderFig51a(s);
    EXPECT_FALSE(out.empty());
}

// --- golden snapshots over the committed 4x4 sweep cache --------------------

class ReportGolden
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReportGolden, RendersByteIdenticallyToSnapshot)
{
    // Every figure renderer, over the real 54-cell golden sweep, must
    // reproduce its committed text snapshot byte for byte — the
    // snapshots were captured from the historical hand-rolled
    // renderers, so this pins the whole structured pipeline (builder
    // + table emitter) to the legacy output.
    const std::string name = GetParam();
    std::string file = name;
    for (char &c : file)
        if (c == '.')
            c = '_';
    const std::string ref =
        fileBytes(goldenPath("reports/" + file + ".txt"));
    ASSERT_FALSE(ref.empty()) << "missing snapshot for " << name;

    Figure f;
    ASSERT_TRUE(buildReportByName(name, goldenSweep(), Topology{}, f));
    EXPECT_EQ(renderFigure(f, ReportFormat::Table), ref) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFigures, ReportGolden,
    ::testing::Values("fig5.1a", "fig5.1b", "fig5.1c", "fig5.1d",
                      "fig5.2", "fig5.3a", "fig5.3b", "fig5.3c",
                      "overhead", "headline"),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

TEST(ReportGoldenWrappers, LegacyRenderersMatchSnapshots)
{
    const Sweep &s = goldenSweep();
    EXPECT_EQ(renderFig51a(s),
              fileBytes(goldenPath("reports/fig5_1a.txt")));
    EXPECT_EQ(renderFig52(s),
              fileBytes(goldenPath("reports/fig5_2.txt")));
    EXPECT_EQ(renderFig53(s, WasteLevel::Memory),
              fileBytes(goldenPath("reports/fig5_3c.txt")));
    EXPECT_EQ(renderOverheadComposition(s),
              fileBytes(goldenPath("reports/overhead.txt")));
    EXPECT_EQ(renderHeadline(s),
              fileBytes(goldenPath("reports/headline.txt")));
}

// --- structured emitters ----------------------------------------------------

TEST(FigureEmitters, JsonCarriesTheFigureStructure)
{
    const Figure f = buildFig51a(syntheticSweep());
    const std::string json = renderFigure(f, ReportFormat::Json);
    EXPECT_NE(json.find("\"id\": \"fig5.1a\""), std::string::npos);
    EXPECT_NE(json.find("\"value_cols\": [\"LD\", \"ST\", \"WB\", "
                        "\"Overhead\", \"Total\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"labels\": [\"DBypFull\"]"),
              std::string::npos);
    // Values are raw fractions, not formatted percentages.
    EXPECT_EQ(json.find('%'), std::string::npos);
}

TEST(FigureEmitters, CsvHasOneRowPerProtocolPlusHeader)
{
    const Figure f = buildFig51a(syntheticSweep());
    const std::string csv = renderFigure(f, ReportFormat::Csv);
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    // One benchmark table: header + 2 protocol rows.
    EXPECT_EQ(lines, 3u);
    EXPECT_NE(csv.find("figure,table,toy,LD,ST,WB,Overhead,Total"),
              std::string::npos);
    EXPECT_NE(csv.find("fig5.1a,toy,MESI,"), std::string::npos);
}

TEST(FigureEmitters, MissingValuesRenderAsDashAndNull)
{
    Sweep s = syntheticSweep();
    s.results[0][1].traffic.ohUnblock = 0; // zero overhead row
    const Figure f = buildOverheadComposition(s);
    EXPECT_NE(renderFigure(f, ReportFormat::Table).find(" - "),
              std::string::npos);
    EXPECT_NE(renderFigure(f, ReportFormat::Json).find("null"),
              std::string::npos);
}

TEST(EnergyFigure, MesiRowNormalizesToItself)
{
    const Figure f = buildEnergy(goldenSweep(), Topology{});
    ASSERT_EQ(f.tables.size(), goldenSweep().benchNames.size());
    for (const FigureTable &t : f.tables) {
        ASSERT_FALSE(t.rows.empty());
        // MESI is the first protocol: its Total column is 1.0.
        EXPECT_NEAR(t.rows[0].values.back(), 1.0, 1e-12);
    }
}

TEST(ReportRegistry, EveryListedNameBuilds)
{
    // The name list and the dispatch share one registry; every
    // advertised report must build on a real sweep.
    Figure f;
    for (const std::string &name : reportNames()) {
        SCOPED_TRACE(name);
        EXPECT_TRUE(
            buildReportByName(name, goldenSweep(), Topology{}, f));
        EXPECT_EQ(f.id, name);
    }
    EXPECT_FALSE(
        buildReportByName("no-such-report", goldenSweep(), Topology{},
                          f));
}

// --- placement study --------------------------------------------------------

TEST(Placement, CuratedPlacementsAreDistinct)
{
    const auto p44 = curatedMcPlacements(4, 4);
    ASSERT_EQ(p44.size(), 5u); // all five are distinct on 4x4
    EXPECT_EQ(p44[0].first, "corners");
    EXPECT_EQ(p44[1].first, "corner0");
    EXPECT_EQ(p44[1].second.numMemCtrls(), 1u);
    EXPECT_EQ(p44[1].second.memCtrlTiles().front(), 0u);
    for (std::size_t i = 0; i < p44.size(); ++i)
        for (std::size_t j = i + 1; j < p44.size(); ++j)
            EXPECT_NE(p44[i].second.describe(),
                      p44[j].second.describe())
                << p44[i].first << " vs " << p44[j].first;

    // On a 2x2 mesh the center placement coincides with the corners
    // and must be deduplicated away.
    const auto p22 = curatedMcPlacements(2, 2);
    EXPECT_EQ(p22.size(), 4u);
    for (const auto &[name, topo] : p22)
        EXPECT_NE(name, "center");
}

TEST(Placement, FigureShapesPlacementByProtocol)
{
    // Two fake single-benchmark sweeps standing in for two placements.
    Sweep a = syntheticSweep();
    Sweep b = syntheticSweep();
    a.results[0][0].maxLinkFlits = 111;
    b.results[0][0].maxLinkFlits = 222;

    const Figure f = buildPlacementStudy(
        {"corners", "corner0"},
        {Topology(4, 4), Topology(4, 4, std::vector<NodeId>{0})},
        {a, b});
    ASSERT_EQ(f.tables.size(), 1u);
    const FigureTable &t = f.tables[0];
    EXPECT_FALSE(t.percent);
    ASSERT_EQ(t.valueCols.size(), 3u);
    EXPECT_EQ(t.valueCols[0], "MaxLinkFlits");
    // 2 placements x (MESI, DBypFull).
    ASSERT_EQ(t.rows.size(), 4u);
    EXPECT_EQ(t.rows[0].labels[0], "corners");
    EXPECT_EQ(t.rows[2].labels[0], "corner0");
    EXPECT_DOUBLE_EQ(t.rows[0].values[0], 111);
    EXPECT_DOUBLE_EQ(t.rows[2].values[0], 222);
    // Energy reflects each placement's topology-aware model.
    EXPECT_GT(t.rows[0].values[2], 0);
}

} // namespace wastesim
