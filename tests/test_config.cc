/** Unit tests: protocol feature decoding and parameter presets. */

#include <gtest/gtest.h>

#include "system/config.hh"

namespace wastesim
{

TEST(ProtocolConfig, FamilySplit)
{
    EXPECT_TRUE(ProtocolConfig::make(ProtocolName::MESI).isMesi());
    EXPECT_TRUE(ProtocolConfig::make(ProtocolName::MMemL1).isMesi());
    for (ProtocolName p :
         {ProtocolName::DeNovo, ProtocolName::DFlexL1,
          ProtocolName::DValidateL2, ProtocolName::DMemL1,
          ProtocolName::DFlexL2, ProtocolName::DBypL2,
          ProtocolName::DBypFull}) {
        EXPECT_TRUE(ProtocolConfig::make(p).isDeNovo())
            << protocolName(p);
    }
}

TEST(ProtocolConfig, FeatureLadderIsCumulative)
{
    // Each step of Section 3.2 adds features without removing any.
    auto featureCount = [](ProtocolName p) {
        const ProtocolConfig c = ProtocolConfig::make(p);
        return int(c.memToL1) + int(c.flexL1) + int(c.flexL2) +
               int(c.l2WriteValidate) + int(c.l2DirtyWbOnly) +
               int(c.respBypass) + int(c.reqBypass);
    };
    EXPECT_EQ(featureCount(ProtocolName::DeNovo), 0);
    EXPECT_LT(featureCount(ProtocolName::DValidateL2),
              featureCount(ProtocolName::DMemL1));
    EXPECT_LT(featureCount(ProtocolName::DMemL1),
              featureCount(ProtocolName::DFlexL2));
    EXPECT_LT(featureCount(ProtocolName::DFlexL2),
              featureCount(ProtocolName::DBypL2));
    EXPECT_LT(featureCount(ProtocolName::DBypL2),
              featureCount(ProtocolName::DBypFull));
}

TEST(ProtocolConfig, PaperDefinitions)
{
    const auto dflex1 = ProtocolConfig::make(ProtocolName::DFlexL1);
    EXPECT_TRUE(dflex1.flexL1);
    EXPECT_FALSE(dflex1.flexL2);          // on-chip responses only
    EXPECT_FALSE(dflex1.l2WriteValidate); // still fetch-on-write

    const auto dval = ProtocolConfig::make(ProtocolName::DValidateL2);
    EXPECT_TRUE(dval.l2WriteValidate);
    EXPECT_TRUE(dval.l2DirtyWbOnly);
    EXPECT_FALSE(dval.flexL1);

    const auto dbyp = ProtocolConfig::make(ProtocolName::DBypFull);
    EXPECT_TRUE(dbyp.respBypass);
    EXPECT_TRUE(dbyp.reqBypass);
    EXPECT_TRUE(dbyp.flexL1 && dbyp.flexL2);
    EXPECT_TRUE(dbyp.memToL1);

    const auto mmem = ProtocolConfig::make(ProtocolName::MMemL1);
    EXPECT_TRUE(mmem.memToL1);
    EXPECT_FALSE(mmem.flexL1);
}

TEST(SimParams, Table41Defaults)
{
    SimParams p;
    // 32 KB 8-way L1, 256 KB 16-way L2 slice, 64 B lines.
    EXPECT_EQ(p.l1Sets * p.l1Ways * bytesPerLine, 32u * 1024);
    EXPECT_EQ(p.l2Sets * p.l2Ways * bytesPerLine, 256u * 1024);
    EXPECT_EQ(p.linkLatency, 3u);
    EXPECT_EQ(p.writeBufferEntries, 32u);
    EXPECT_EQ(p.wcTimeout, 10000u);
    EXPECT_EQ(p.dram.numRanks, 2u);
    EXPECT_EQ(p.dram.numBanksPerRank, 8u);
    EXPECT_FALSE(p.dram.partialReads);
}

TEST(SimParams, ScaledPreservesRatios)
{
    SimParams paper;
    SimParams scaled = SimParams::scaled();
    const double paper_ratio =
        double(paper.l2Sets * paper.l2Ways * numTiles) /
        (paper.l1Sets * paper.l1Ways * numTiles);
    const double scaled_ratio =
        double(scaled.l2Sets * scaled.l2Ways * numTiles) /
        (scaled.l1Sets * scaled.l1Ways * numTiles);
    EXPECT_DOUBLE_EQ(paper_ratio, scaled_ratio);
    EXPECT_EQ(paper.l1Ways, scaled.l1Ways);
    EXPECT_EQ(paper.l2Ways, scaled.l2Ways);
}

TEST(SimParams, DescribeMentionsKeyNumbers)
{
    const std::string d = SimParams{}.describe();
    EXPECT_NE(d.find("32 KB"), std::string::npos);
    EXPECT_NE(d.find("4 MB"), std::string::npos);
    EXPECT_NE(d.find("FR-FCFS"), std::string::npos);
    EXPECT_NE(d.find("DDR3-1066"), std::string::npos);
}

TEST(ProtocolNames, FigureOrderAndUniqueness)
{
    ASSERT_EQ(numProtocols, 9u);
    EXPECT_STREQ(protocolName(allProtocols[0]), "MESI");
    EXPECT_STREQ(protocolName(allProtocols[8]), "DBypFull");
    for (unsigned i = 0; i < numProtocols; ++i)
        for (unsigned j = i + 1; j < numProtocols; ++j)
            EXPECT_STRNE(protocolName(allProtocols[i]),
                         protocolName(allProtocols[j]));
}

} // namespace wastesim
