/** Direct message-level unit tests of the DeNovo L2 slice:
 *  word serving, forwards, MSHR merging, registration semantics,
 *  write-validate vs fetch-on-write, and deregister corrections. */

#include <gtest/gtest.h>

#include "protocol/denovo/denovo_l2.hh"
#include "system/config.hh"

namespace wastesim
{

namespace
{

class Sink : public MessageHandler
{
  public:
    void
    handle(Message msg) override
    {
        received.push_back(std::move(msg));
    }

    /** Last message of a kind, or nullptr. */
    const Message *
    last(MsgKind k) const
    {
        for (auto it = received.rbegin(); it != received.rend(); ++it)
            if (it->kind == k)
                return &*it;
        return nullptr;
    }

    unsigned
    count(MsgKind k) const
    {
        unsigned n = 0;
        for (const auto &m : received)
            n += m.kind == k;
        return n;
    }

    std::vector<Message> received;
};

struct L2Harness
{
    SimParams params = SimParams::scaled();
    ProtocolConfig cfg =
        ProtocolConfig::make(ProtocolName::DValidateL2);

    EventQueue eq;
    TrafficRecorder tr;
    Network net{eq, tr};
    WordProfiler prof{WordProfiler::Level::L2};
    MemProfiler memProf;
    std::unique_ptr<DenovoL2> l2;
    std::array<Sink, numTiles> l1s;
    std::array<Sink, numMemCtrls> mcs;

    /** Slice-0 lines: line n with homeSlice == 0. */
    static Addr
    line(unsigned n)
    {
        // 256-byte slice interleave: lines 0..3 of every 4 KB stripe
        // are home to slice 0; stay inside the first group.
        return static_cast<Addr>(n) * numTiles *
               sliceInterleaveLines * bytesPerLine;
    }

    explicit L2Harness(ProtocolName p = ProtocolName::DValidateL2)
        : cfg(ProtocolConfig::make(p))
    {
        l2 = std::make_unique<DenovoL2>(0, cfg, params, eq, net, prof,
                                        memProf);
        net.attach(l2Ep(0), l2.get());
        for (unsigned i = 0; i < numTiles; ++i)
            net.attach(l1Ep(i), &l1s[i]);
        for (unsigned c = 0; c < numMemCtrls; ++c)
            net.attach(mcEp(c), &mcs[c]);
    }

    void
    reg(CoreId core, Addr la, WordMask words)
    {
        Message m;
        m.kind = MsgKind::DnReg;
        m.src = l1Ep(core);
        m.dst = l2Ep(0);
        m.line = la;
        m.mask = words;
        m.requester = core;
        m.cls = TrafficClass::Store;
        m.ctl = CtlType::ReqCtl;
        net.send(std::move(m));
        eq.run();
    }

    void
    loadReq(CoreId core, Addr la, WordMask want, bool bypass = false)
    {
        Message m;
        m.kind = MsgKind::DnLoadReq;
        m.src = l1Ep(core);
        m.dst = l2Ep(0);
        m.line = la;
        m.mask = want;
        m.requester = core;
        m.cls = TrafficClass::Load;
        m.ctl = CtlType::ReqCtl;
        m.flag = bypass;
        LineChunk c(la);
        c.want = want;
        m.chunks.push_back(c);
        net.send(std::move(m));
        eq.run();
    }

    void
    wb(CoreId core, Addr la, WordMask words, bool combined = false,
       unsigned aux = 0)
    {
        Message m;
        m.kind = MsgKind::DnWb;
        m.src = l1Ep(core);
        m.dst = l2Ep(0);
        m.line = la;
        m.requester = core;
        m.cls = TrafficClass::Writeback;
        m.ctl = CtlType::WbControl;
        m.flag = combined;
        m.aux = aux;
        if (combined || aux == 2)
            m.mask = words;
        if (aux != 2) {
            LineChunk c(la, words);
            c.dirty = words;
            m.chunks.push_back(c);
        }
        net.send(std::move(m));
        eq.run();
    }
};

} // namespace

TEST(DenovoL2Unit, RegistrationAckAndState)
{
    L2Harness h;
    h.reg(3, L2Harness::line(0), WordMask::range(0, 4));

    const Message *ack = h.l1s[3].last(MsgKind::DnRegAck);
    ASSERT_NE(ack, nullptr);
    EXPECT_EQ(ack->mask, WordMask::range(0, 4));

    const CacheLine *cl = h.l2->array().find(L2Harness::line(0));
    ASSERT_NE(cl, nullptr);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(cl->regOwner[w], 3u);
    EXPECT_EQ(cl->regOwner[4], invalidNode);
    // Write-validate: no memory fetch.
    for (const auto &mc : h.mcs)
        EXPECT_EQ(mc.count(MsgKind::MemRead), 0u);
}

TEST(DenovoL2Unit, FetchOnWriteBaselineFetchesLine)
{
    L2Harness h(ProtocolName::DeNovo);
    h.reg(3, L2Harness::line(0), WordMask::single(0));
    // Baseline DeNovo: registration to an absent line pulls the whole
    // line from memory first (Section 3.1, "L2 Write-Validate").
    const Message *rd = h.mcs[0].last(MsgKind::MemRead);
    ASSERT_NE(rd, nullptr);
    EXPECT_TRUE(rd->chunks.at(0).want.isFull());
    // The ack waits for the fill.
    EXPECT_EQ(h.l1s[3].count(MsgKind::DnRegAck), 0u);
}

TEST(DenovoL2Unit, ReRegistrationStealsAndInvalidatesOldOwner)
{
    L2Harness h;
    h.reg(3, L2Harness::line(0), WordMask::single(5));
    h.reg(7, L2Harness::line(0), WordMask::single(5));

    const Message *inv = h.l1s[3].last(MsgKind::DnRegInv);
    ASSERT_NE(inv, nullptr);
    EXPECT_TRUE(inv->mask.test(5));
    EXPECT_EQ(h.l2->array().find(L2Harness::line(0))->regOwner[5],
              7u);
}

TEST(DenovoL2Unit, LoadForwardedToRegistrant)
{
    L2Harness h;
    h.reg(3, L2Harness::line(0), WordMask::single(2));
    h.loadReq(9, L2Harness::line(0), WordMask::single(2));

    const Message *fwd = h.l1s[3].last(MsgKind::DnFwdLoadReq);
    ASSERT_NE(fwd, nullptr);
    EXPECT_EQ(fwd->requester, 9u);
    EXPECT_TRUE(fwd->mask.test(2));
    // Nothing needed from memory.
    for (const auto &mc : h.mcs)
        EXPECT_EQ(mc.count(MsgKind::MemRead), 0u);
}

TEST(DenovoL2Unit, MissingWordsGoToMemoryWithDirtyFilter)
{
    L2Harness h;
    h.reg(3, L2Harness::line(0), WordMask::single(2));
    h.loadReq(9, L2Harness::line(0), WordMask::full());

    const Message *rd = h.mcs[0].last(MsgKind::MemRead);
    ASSERT_NE(rd, nullptr);
    // The registered word must be filtered from the memory return.
    EXPECT_TRUE(rd->chunks.at(0).dirty.test(2));
}

TEST(DenovoL2Unit, ConcurrentLoadsMergeIntoOneFetch)
{
    L2Harness h;
    h.loadReq(1, L2Harness::line(0), WordMask::full());
    h.loadReq(2, L2Harness::line(0), WordMask::full());
    EXPECT_EQ(h.mcs[0].count(MsgKind::MemRead), 1u);
}

TEST(DenovoL2Unit, WritebackInstallsDirtyWords)
{
    L2Harness h;
    h.reg(3, L2Harness::line(0), WordMask::range(0, 2));
    h.wb(3, L2Harness::line(0), WordMask::range(0, 2));

    const CacheLine *cl = h.l2->array().find(L2Harness::line(0));
    ASSERT_NE(cl, nullptr);
    EXPECT_TRUE(cl->validWords.test(0));
    EXPECT_TRUE(cl->dirtyWords.test(1));
    EXPECT_EQ(cl->regOwner[0], invalidNode); // ownership returned
    ASSERT_NE(h.l1s[3].last(MsgKind::DnWbAck), nullptr);
}

TEST(DenovoL2Unit, StaleWritebackLosesToNewerRegistration)
{
    L2Harness h;
    h.reg(3, L2Harness::line(0), WordMask::single(0));
    h.reg(7, L2Harness::line(0), WordMask::single(0)); // 7 owns now
    h.wb(3, L2Harness::line(0), WordMask::single(0));  // stale

    const CacheLine *cl = h.l2->array().find(L2Harness::line(0));
    ASSERT_NE(cl, nullptr);
    EXPECT_EQ(cl->regOwner[0], 7u);          // unchanged
    EXPECT_FALSE(cl->validWords.test(0));    // stale data dropped
}

TEST(DenovoL2Unit, DeregisterCorrectionClearsOwnership)
{
    L2Harness h;
    h.reg(3, L2Harness::line(0), WordMask::single(4));
    h.wb(3, L2Harness::line(0), WordMask::single(4), false,
         /*aux=*/2); // deregister

    const CacheLine *cl = h.l2->array().find(L2Harness::line(0));
    // The line became fully empty and was dropped.
    EXPECT_TRUE(!cl || cl->regOwner[4] == invalidNode);
}

TEST(DenovoL2Unit, BypassRequestFetchesToL1Only)
{
    L2Harness h(ProtocolName::DBypL2);
    h.loadReq(5, L2Harness::line(0), WordMask::range(0, 4),
              /*bypass=*/true);

    const Message *rd = h.mcs[0].last(MsgKind::MemRead);
    ASSERT_NE(rd, nullptr);
    EXPECT_TRUE(rd->aux & 2u /* McFlag::bypassL2 */);
    // No allocation in the slice.
    EXPECT_EQ(h.l2->array().find(L2Harness::line(0)), nullptr);
}

TEST(DenovoL2Unit, L2HitServedAndCountsReuse)
{
    L2Harness h;
    // Install words via a writeback, then read them back.
    h.reg(3, L2Harness::line(0), WordMask::range(0, 8));
    h.wb(3, L2Harness::line(0), WordMask::range(0, 8));
    h.loadReq(9, L2Harness::line(0), WordMask::range(0, 8));

    const Message *resp = h.l1s[9].last(MsgKind::DnLoadResp);
    ASSERT_NE(resp, nullptr);
    EXPECT_EQ(resp->words(), 8u);
    EXPECT_GT(h.l2->wordHits(), 0u);
}

TEST(DenovoL2Unit, BloomBankTracksRegisteredLines)
{
    L2Harness h(ProtocolName::DBypFull);
    EXPECT_FALSE(h.l2->bloom().maybeContains(L2Harness::line(0)));
    h.reg(3, L2Harness::line(0), WordMask::single(0));
    EXPECT_TRUE(h.l2->bloom().maybeContains(L2Harness::line(0)));
}

TEST(DenovoL2Unit, BloomCopyRespondsWithImage)
{
    L2Harness h(ProtocolName::DBypFull);
    Message m;
    m.kind = MsgKind::BloomCopyReq;
    m.src = l1Ep(4);
    m.dst = l2Ep(0);
    m.line = L2Harness::line(0);
    m.requester = 4;
    m.cls = TrafficClass::Overhead;
    m.ctl = CtlType::OhBloom;
    m.aux = 0;
    h.net.send(std::move(m));
    h.eq.run();

    const Message *resp = h.l1s[4].last(MsgKind::BloomCopyResp);
    ASSERT_NE(resp, nullptr);
    EXPECT_EQ(resp->rawWords, 16u); // a 64-byte image
    EXPECT_FALSE(resp->blob.empty());
}

} // namespace wastesim
