/** Unit tests: network flit sizing, latency, traffic attribution. */

#include <gtest/gtest.h>

#include "noc/network.hh"
#include "profile/traffic.hh"
#include "sim/event_queue.hh"

namespace wastesim
{

namespace
{

class Sink : public MessageHandler
{
  public:
    void
    handle(Message msg) override
    {
        received.push_back(std::move(msg));
    }

    std::vector<Message> received;
};

Message
ctlMsg(Endpoint src, Endpoint dst, TrafficClass cls, CtlType t)
{
    Message m;
    m.kind = MsgKind::GetS;
    m.src = src;
    m.dst = dst;
    m.line = 1 << 20;
    m.cls = cls;
    m.ctl = t;
    return m;
}

} // namespace

TEST(Network, ControlMessageIsOneFlit)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(l2Ep(15), &sink);

    net.send(ctlMsg(l1Ep(0), l2Ep(15), TrafficClass::Load,
                    CtlType::ReqCtl));
    eq.run();

    ASSERT_EQ(sink.received.size(), 1u);
    EXPECT_EQ(sink.received[0].hops, 7u); // manhattan 6 + ejection
    EXPECT_DOUBLE_EQ(tr.stats().ldReqCtl, 7.0);
    EXPECT_DOUBLE_EQ(tr.rawFlitHops(), 7.0);
}

TEST(Network, LatencyModel)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr, 3);
    Sink sink;
    net.attach(l2Ep(15), &sink);
    net.send(ctlMsg(l1Ep(0), l2Ep(15), TrafficClass::Load,
                    CtlType::ReqCtl));
    eq.run();
    // 7 hops x 3 cycles, single flit: 21 cycles.
    EXPECT_EQ(eq.now(), 21u);
}

TEST(Network, DataSerializationDelay)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr, 3);
    Sink sink;
    net.attach(l1Ep(1), &sink);

    Message m = ctlMsg(l2Ep(0), l1Ep(1), TrafficClass::Load,
                       CtlType::RespCtl);
    m.kind = MsgKind::Data;
    m.chunks.emplace_back(m.line, WordMask::full());
    net.send(std::move(m));
    eq.run();
    // 2 hops x 3 + (5 flits - 1) = 10.
    EXPECT_EQ(eq.now(), 10u);
}

TEST(Network, FullLinePayloadFlitHops)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(l1Ep(1), &sink);

    Message m = ctlMsg(l2Ep(0), l1Ep(1), TrafficClass::Load,
                       CtlType::RespCtl);
    m.kind = MsgKind::Data;
    m.chunks.emplace_back(m.line, WordMask::full());
    net.send(std::move(m));
    eq.run();

    // 16 words = 4 data flits + 1 control, hops = 2: raw = 10.
    EXPECT_DOUBLE_EQ(tr.rawFlitHops(), 10.0);
    // Control charged at send: 1 flit x 2 hops (no unfilled).
    EXPECT_DOUBLE_EQ(tr.stats().ldRespCtl, 2.0);
}

TEST(Network, UnfilledFlitFractionChargedToControl)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(l1Ep(1), &sink);

    Message m = ctlMsg(l2Ep(0), l1Ep(1), TrafficClass::Load,
                       CtlType::RespCtl);
    m.kind = MsgKind::Data;
    m.chunks.emplace_back(m.line, WordMask::range(0, 5)); // 5 words
    net.send(std::move(m));
    eq.run();

    // 5 words -> 2 data flits, 3/4 of the last unfilled.
    // ctl = (1 + 0.75) x 2 hops = 3.5.
    EXPECT_DOUBLE_EQ(tr.stats().ldRespCtl, 3.5);
    EXPECT_DOUBLE_EQ(tr.rawFlitHops(), 6.0); // 3 flits x 2 hops
}

TEST(Network, WritebackDataAttributedAtSend)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(l2Ep(1), &sink);

    Message m = ctlMsg(l1Ep(0), l2Ep(1), TrafficClass::Writeback,
                       CtlType::WbControl);
    m.kind = MsgKind::PutX;
    LineChunk chunk(m.line, WordMask::full());
    chunk.dirty = WordMask::range(0, 4);
    m.chunks.push_back(chunk);
    net.send(std::move(m));
    eq.run();

    // 4 dirty (used) + 12 clean (waste) words at hops=2, 1/4 each.
    EXPECT_DOUBLE_EQ(tr.stats().wbL2Used, 2.0);
    EXPECT_DOUBLE_EQ(tr.stats().wbL2Waste, 6.0);
}

TEST(Network, WritebackToMemoryUsesMemBuckets)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(mcEp(0), &sink);

    Message m = ctlMsg(l2Ep(1), mcEp(0), TrafficClass::Writeback,
                       CtlType::WbControl);
    m.kind = MsgKind::MemWrite;
    LineChunk chunk(m.line, WordMask::range(0, 8));
    chunk.dirty = WordMask::range(0, 8);
    m.chunks.push_back(chunk);
    net.send(std::move(m));
    eq.run();

    EXPECT_GT(tr.stats().wbMemUsed, 0.0);
    EXPECT_DOUBLE_EQ(tr.stats().wbMemWaste, 0.0);
}

TEST(Network, RawBlobChargedAsControl)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(l1Ep(0), &sink);

    Message m = ctlMsg(l2Ep(5), l1Ep(0), TrafficClass::Overhead,
                       CtlType::OhBloom);
    m.kind = MsgKind::BloomCopyResp;
    m.rawWords = 16; // a 64-byte Bloom image
    net.send(std::move(m));
    eq.run();

    const unsigned hops = Mesh{}.hops(5, 0);
    // 1 ctl + 4 data flits, all charged to the Bloom bucket.
    EXPECT_DOUBLE_EQ(tr.stats().ohBloom, 5.0 * hops);
    EXPECT_DOUBLE_EQ(tr.rawFlitHops(), 5.0 * hops);
}

TEST(Network, MultiChunkPayloadCounted)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(l1Ep(0), &sink);

    Message m = ctlMsg(l1Ep(3), l1Ep(0), TrafficClass::Load,
                       CtlType::RespCtl);
    m.kind = MsgKind::DnLoadResp;
    m.chunks.emplace_back(1 << 20, WordMask::range(0, 6));
    m.chunks.emplace_back((1 << 20) + 64, WordMask::range(0, 6));
    net.send(std::move(m));
    eq.run();

    ASSERT_EQ(sink.received.size(), 1u);
    EXPECT_EQ(sink.received[0].words(), 12u);
    EXPECT_EQ(sink.received[0].dataFlits(), 3u);
}

TEST(Network, MessageCountTracked)
{
    EventQueue eq;
    TrafficRecorder tr;
    Network net(eq, tr);
    Sink sink;
    net.attach(l2Ep(0), &sink);
    for (int i = 0; i < 5; ++i)
        net.send(ctlMsg(l1Ep(0), l2Ep(0), TrafficClass::Load,
                        CtlType::ReqCtl));
    eq.run();
    EXPECT_EQ(net.messagesSent(), 5u);
}

} // namespace wastesim
