/** Unit tests: the DeNovo write-combining table (Section 4.2). */

#include <gtest/gtest.h>

#include "protocol/denovo/write_combine.hh"

namespace wastesim
{

namespace
{

struct Harness
{
    EventQueue eq;
    std::vector<std::pair<Addr, WordMask>> flushes;

    WriteCombineTable
    make(unsigned entries = 32, Tick timeout = 10000)
    {
        return WriteCombineTable(
            eq, entries, timeout,
            [this](Addr l, WordMask w) { flushes.emplace_back(l, w); });
    }
};

} // namespace

TEST(WriteCombine, BatchesWordsOfALine)
{
    Harness h;
    auto wc = h.make();
    wc.write(0x1000, 0);
    wc.write(0x1000, 1);
    wc.write(0x1000, 5);
    EXPECT_TRUE(h.flushes.empty());
    EXPECT_EQ(wc.pendingFor(0x1000).count(), 3u);
    EXPECT_EQ(wc.size(), 1u);
}

TEST(WriteCombine, FullLineFlushesImmediately)
{
    Harness h;
    auto wc = h.make();
    for (unsigned w = 0; w < wordsPerLine; ++w)
        wc.write(0x1000, w);
    ASSERT_EQ(h.flushes.size(), 1u);
    EXPECT_EQ(h.flushes[0].first, 0x1000u);
    EXPECT_TRUE(h.flushes[0].second.isFull());
    EXPECT_EQ(wc.flushFullLine, 1u);
    EXPECT_EQ(wc.size(), 0u);
}

TEST(WriteCombine, TimeoutFlushes)
{
    Harness h;
    auto wc = h.make(32, 10000);
    wc.write(0x1000, 3);
    h.eq.run(9999);
    EXPECT_TRUE(h.flushes.empty());
    h.eq.run(10001);
    ASSERT_EQ(h.flushes.size(), 1u);
    EXPECT_EQ(wc.flushTimeout, 1u);
}

TEST(WriteCombine, TimeoutOfFlushedEntryIsInert)
{
    Harness h;
    auto wc = h.make(32, 100);
    wc.write(0x1000, 0);
    wc.flushAll();
    ASSERT_EQ(h.flushes.size(), 1u);
    h.eq.run(); // expired timer must not double-flush
    EXPECT_EQ(h.flushes.size(), 1u);
}

TEST(WriteCombine, TimeoutGenerationsDistinct)
{
    Harness h;
    auto wc = h.make(32, 100);
    wc.write(0x1000, 0);
    wc.flushAll(); // gen-0 entry flushed; its timer still armed
    // A later entry for the same line: the stale gen-0 timer (fires
    // at t=100) must not flush it; its own timer fires at t=150.
    h.eq.schedule(50, [&] { wc.write(0x1000, 1); });
    h.eq.run(120);
    EXPECT_EQ(h.flushes.size(), 1u);
    h.eq.run();
    EXPECT_EQ(h.flushes.size(), 2u);
    EXPECT_TRUE(h.flushes[1].second.test(1));
}

TEST(WriteCombine, CapacityForceFlushesOldest)
{
    Harness h;
    auto wc = h.make(2, 10000);
    wc.write(0x1000, 0);
    wc.write(0x2000, 0);
    wc.write(0x3000, 0); // evicts the 0x1000 entry
    ASSERT_EQ(h.flushes.size(), 1u);
    EXPECT_EQ(h.flushes[0].first, 0x1000u);
    EXPECT_EQ(wc.flushCapacity, 1u);
    EXPECT_EQ(wc.size(), 2u);
}

TEST(WriteCombine, ReleaseFlushesAll)
{
    Harness h;
    auto wc = h.make();
    wc.write(0x1000, 0);
    wc.write(0x2000, 1);
    wc.flushAll();
    EXPECT_EQ(h.flushes.size(), 2u);
    EXPECT_EQ(wc.flushRelease, 2u);
    EXPECT_EQ(wc.size(), 0u);
}

TEST(WriteCombine, TakeLineRemovesWithoutFlush)
{
    Harness h;
    auto wc = h.make();
    wc.write(0x1000, 2);
    wc.write(0x1000, 3);
    const WordMask taken = wc.takeLine(0x1000);
    EXPECT_EQ(taken.count(), 2u);
    EXPECT_TRUE(h.flushes.empty());
    EXPECT_TRUE(wc.takeLine(0x1000).empty());
}

TEST(WriteCombine, RadixStylePressureSplitsRegistrations)
{
    // The paper's radix pathology: more open lines than entries
    // splits what MESI would do with one ownership request.
    Harness h;
    auto wc = h.make(32, 1u << 30);
    for (unsigned pass = 0; pass < 2; ++pass)
        for (unsigned line = 0; line < 64; ++line)
            wc.write(0x10000 + line * 64, pass);
    // 64 lines over 32 entries: every line flushed at least once.
    EXPECT_GE(h.flushes.size(), 64u);
    EXPECT_GT(wc.flushCapacity, 0u);
}

} // namespace wastesim
