/**
 * Unit tests: the observability layer.
 *
 * Debug-flag parsing and tick-window gating, the windowed counter
 * sampler (delta vs. gauge semantics, JSON round-trip), the JSON
 * reader, Chrome trace-event output, and the two invariants the layer
 * must never break: an observed simulation produces the identical
 * serialized RunResult, and observation state never leaks between
 * runs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "obs/debug.hh"
#include "obs/jsonv.hh"
#include "obs/observer.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "system/report_obs.hh"
#include "system/runner.hh"
#include "system/sweep_engine.hh"

namespace wastesim
{

namespace
{

/** Restores the global debug + obs state a test mutates. */
class ObsStateGuard
{
  public:
    ~ObsStateGuard()
    {
        debug::clearFlags();
        debug::sink = nullptr;
        obsConfig() = ObsConfig{};
    }
};

/** A .now() source for DPRINTF without an EventQueue. */
struct FakeClock
{
    Tick t = 0;
    Tick now() const { return t; }
};

} // namespace

TEST(DebugFlags, SetFlagsEnablesExactlyTheListedOnes)
{
    ObsStateGuard guard;
    ASSERT_TRUE(debug::setFlags("mesi,dram"));
    EXPECT_TRUE(debug::Mesi.enabled);
    EXPECT_TRUE(debug::Dram.enabled);
    EXPECT_FALSE(debug::Noc.enabled);
    EXPECT_FALSE(debug::Sweep.enabled);

    // A second call replaces, not extends, the enabled set.
    ASSERT_TRUE(debug::setFlags("noc"));
    EXPECT_FALSE(debug::Mesi.enabled);
    EXPECT_TRUE(debug::Noc.enabled);

    ASSERT_TRUE(debug::setFlags("all"));
    for (const debug::Flag *f : debug::allFlags())
        EXPECT_TRUE(f->enabled) << f->name;

    // Empty disables everything.
    ASSERT_TRUE(debug::setFlags(""));
    for (const debug::Flag *f : debug::allFlags())
        EXPECT_FALSE(f->enabled) << f->name;
}

TEST(DebugFlags, UnknownFlagFailsAndListsTheValidOnes)
{
    ObsStateGuard guard;
    std::string err;
    EXPECT_FALSE(debug::setFlags("mesi,bogus", &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    // The error names every valid flag so the user can self-serve.
    for (const debug::Flag *f : debug::allFlags())
        EXPECT_NE(err.find(f->name), std::string::npos) << f->name;
}

TEST(DebugFlags, TraceLinesAreTickWindowGated)
{
    ObsStateGuard guard;
    ASSERT_TRUE(debug::setFlags("mesi"));
    debug::windowStart = 100;
    debug::windowEnd = 200;

    std::vector<std::string> lines;
    debug::sink = [&](const std::string &l) { lines.push_back(l); };

    FakeClock clk;
    for (Tick t : {0, 99, 100, 150, 199, 200, 1000}) {
        clk.t = t;
        DPRINTF(Mesi, clk, "at %llu",
                static_cast<unsigned long long>(t));
    }
    ASSERT_EQ(lines.size(), 3u); // 100, 150, 199
    EXPECT_NE(lines[0].find("100"), std::string::npos);
    EXPECT_NE(lines[2].find("199"), std::string::npos);

    // A disabled flag emits nothing even inside the window.
    clk.t = 150;
    DPRINTF(Noc, clk, "never");
    EXPECT_EQ(lines.size(), 3u);

    // Tickless lines (wall-clock domains) ignore the window.
    DPRINTF_NT(Mesi, "tickless");
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_NE(lines[3].find("tickless"), std::string::npos);
}

TEST(Sampler, CumulativeSeriesRecordDeltasGaugesRecordLevels)
{
    std::uint64_t counter = 0;
    double level = 0;

    Sampler s;
    s.add("test.counter", "count", MetricKind::U64, true,
          [&] { return static_cast<double>(counter); });
    s.add("test.gauge", "events", MetricKind::U64, false,
          [&] { return level; });

    counter = 1000; // pre-begin activity must not count
    s.setWindowTicks(100);
    s.begin(50);

    counter += 7;
    level = 3;
    s.sample(150);

    counter += 11;
    level = 2;
    s.sample(250);

    level = 9;
    s.sample(280); // short final window, no counter activity

    const SampleData &d = s.data();
    ASSERT_EQ(d.series.size(), 2u);
    ASSERT_EQ(d.windows.size(), 3u);
    EXPECT_EQ(d.windows[0].start, 50u);
    EXPECT_EQ(d.windows[0].end, 150u);
    EXPECT_EQ(d.windows[2].end, 280u);
    EXPECT_DOUBLE_EQ(d.windows[0].values[0], 7);
    EXPECT_DOUBLE_EQ(d.windows[1].values[0], 11);
    EXPECT_DOUBLE_EQ(d.windows[2].values[0], 0);
    EXPECT_DOUBLE_EQ(d.windows[0].values[1], 3);
    EXPECT_DOUBLE_EQ(d.windows[1].values[1], 2);
    EXPECT_DOUBLE_EQ(d.windows[2].values[1], 9);
}

TEST(Sampler, JsonRoundTripIsLossless)
{
    Sampler s;
    double v = 0.1; // not exactly representable: exercises the
                    // precision-17 round-trip
    s.add("noc.flits", "flits", MetricKind::U64, true,
          [&] { return v; });
    s.setWindowTicks(10);
    s.begin(0);
    v += 1.0 / 3.0;
    s.sample(10);
    v += 2.5e-17;
    s.sample(17);

    SampleData back;
    std::string err;
    ASSERT_TRUE(sampleDataFromJson(s.toJson(), back, &err)) << err;
    EXPECT_EQ(back.windowTicks, 10u);
    ASSERT_EQ(back.series.size(), 1u);
    EXPECT_EQ(back.series[0].path, "noc.flits");
    EXPECT_EQ(back.series[0].unit, "flits");
    EXPECT_TRUE(back.series[0].cumulative);
    ASSERT_EQ(back.windows.size(), 2u);
    for (std::size_t w = 0; w < 2; ++w) {
        EXPECT_EQ(back.windows[w].start, s.data().windows[w].start);
        EXPECT_EQ(back.windows[w].end, s.data().windows[w].end);
        EXPECT_EQ(back.windows[w].values[0],
                  s.data().windows[w].values[0]); // bit-exact
    }

    // And the figure built from the parsed data has the right shape.
    const Figure f = buildTimelineFigure(back);
    ASSERT_EQ(f.tables.size(), 1u);
    EXPECT_EQ(f.tables[0].valueCols.size(), 1u);
    EXPECT_EQ(f.tables[0].rows.size(), 2u);

    // Malformed and wrong-schema documents are rejected, not crashed.
    EXPECT_FALSE(sampleDataFromJson("{", back, &err));
    EXPECT_FALSE(sampleDataFromJson("{\"a\": 1}", back, &err));
}

TEST(JsonParse, ParsesNestedDocumentsAndReportsErrors)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(jsonParse(
        "{\"a\": [1, 2.5, \"x\\n\"], \"b\": {\"c\": true,"
        " \"d\": null}, \"e\": -3e2}",
        v, &err))
        << err;
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_DOUBLE_EQ(a->items[1].number, 2.5);
    EXPECT_EQ(a->items[2].str, "x\n");
    const JsonValue *b = v.find("b");
    ASSERT_TRUE(b && b->isObject());
    EXPECT_TRUE(b->find("c")->boolean);
    EXPECT_DOUBLE_EQ(v.find("e")->number, -300);
    EXPECT_EQ(v.find("missing"), nullptr);
    // Member order is preserved (figure emitters depend on it).
    EXPECT_EQ(v.members[0].first, "a");
    EXPECT_EQ(v.members[2].first, "e");

    EXPECT_FALSE(jsonParse("{\"a\": }", v, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(jsonParse("[1] trailing", v, &err));
}

TEST(Timeline, EmitsValidTraceEventJson)
{
    Timeline tl;
    tl.threadName(0, 3, "slice 3");
    tl.complete("mesi", "GetS", 10, 5, 0, 3);
    tl.instant("sweep", "hit", 2, 1, 999);
    ASSERT_EQ(tl.size(), 2u); // thread metadata is not an event

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(tl.toJson(), doc, &err)) << err;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    ASSERT_EQ(events->items.size(), 3u);

    bool sawComplete = false, sawInstant = false, sawMeta = false;
    for (const JsonValue &e : events->items) {
        const std::string ph = e.find("ph")->str;
        if (ph == "X") {
            sawComplete = true;
            EXPECT_EQ(e.find("name")->str, "GetS");
            EXPECT_DOUBLE_EQ(e.find("ts")->number, 10);
            EXPECT_DOUBLE_EQ(e.find("dur")->number, 5);
            EXPECT_DOUBLE_EQ(e.find("tid")->number, 3);
        } else if (ph == "i") {
            sawInstant = true;
            EXPECT_EQ(e.find("cat")->str, "sweep");
        } else if (ph == "M") {
            sawMeta = true;
            EXPECT_EQ(e.find("name")->str, "thread_name");
            EXPECT_EQ(e.find("args")->find("name")->str, "slice 3");
        }
    }
    EXPECT_TRUE(sawComplete && sawInstant && sawMeta);
}

TEST(Observer, PathExpansionAndThreadLocalInstall)
{
    EXPECT_EQ(expandObsPath("s_%p_%b.json", "MESI", "lu"),
              "s_MESI_lu.json");
    EXPECT_EQ(expandObsPath("plain.json", "MESI", "lu"), "plain.json");

    EXPECT_EQ(simObserver(), nullptr);
    ObsConfig cfg;
    cfg.sampleWindow = 10;
    EventQueue eq;
    SimObserver o(cfg, eq);
    {
        ScopedSimObserver scoped(&o);
        EXPECT_EQ(simObserver(), &o);
    }
    EXPECT_EQ(simObserver(), nullptr);
}

TEST(Observer, ObservedRunSerializesIdenticallyToUnobserved)
{
    ObsStateGuard guard;
    SweepSpec spec = SweepSpec::fullGrid(1, SimParams::scaled());
    spec.topologies = {Topology(2, 2)};
    spec.benches = {BenchmarkName::LU};
    spec.protocols = {ProtocolName::MESI, ProtocolName::DeNovo};

    auto computeAll = [&] {
        CellCache cache;
        SweepEngine eng(spec);
        eng.run(cache);
        return cache.serialized();
    };

    const std::string plain = computeAll();

    // Full observation on — windowed sampling, timeline spans and
    // per-link heatmap snapshots: the windowed run loop and every
    // emission site must not perturb a single serialized byte.
    obsConfig().sampleWindow = 500;
    obsConfig().timelineOut = "obs_test_tl_%p_%b.json";
    obsConfig().heatmapOut = "obs_test_hm_%p_%b.csv";
    const std::string observed = computeAll();
    EXPECT_EQ(plain, observed)
        << "windowed sampling changed simulation results";
    for (ProtocolName p : spec.protocols) {
        for (const char *pat :
             {"obs_test_tl_%p_%b.json", "obs_test_hm_%p_%b.csv"}) {
            const std::string f = expandObsPath(
                pat, protocolName(p),
                benchmarkName(BenchmarkName::LU));
            EXPECT_EQ(std::remove(f.c_str()), 0)
                << f << " was not written";
        }
    }

    // Tracing enabled (to a swallowing sink) must not perturb either.
    ASSERT_TRUE(debug::setFlags("all"));
    debug::sink = [](const std::string &) {};
    const std::string traced = computeAll();
    EXPECT_EQ(plain, traced) << "tracing changed simulation results";
}

TEST(Observer, GoldenCellMatchesObservedRecomputation)
{
    // One cell of the committed 54-cell golden cache, recomputed with
    // full observation active, still serializes byte-identically: the
    // cross-session proof that observability can never invalidate a
    // sweep cache.
    ObsStateGuard guard;
    CellCache golden;
    ASSERT_TRUE(
        golden.load(testutil::goldenPath("wastesim_sweep_4x4.cache")));

    const SweepSpec spec = SweepSpec::fullGrid(1, SimParams::scaled());
    const SweepCell cell = spec.cellAt(0);

    obsConfig().sampleWindow = 1000;
    CellCache fresh;
    SweepEngine eng(spec);
    eng.setCompute([](const SweepSpec &s, const SweepCell &c) {
        return runOne(s.protocols[c.protoIdx], s.benches[c.benchIdx],
                      s.scale, s.paramsFor(c.topoIdx));
    });
    RunResult r = runOne(spec.protocols[cell.protoIdx],
                         spec.benches[cell.benchIdx], spec.scale,
                         spec.paramsFor(cell.topoIdx));
    fresh.put(spec.cellKey(cell), r);

    CellCache ref;
    RunResult goldenCell;
    ASSERT_TRUE(golden.get(spec.cellKey(cell), goldenCell));
    ref.put(spec.cellKey(cell), goldenCell);
    EXPECT_EQ(ref.serialized(), fresh.serialized());
}

TEST(Observer, SamplerOutputIsDeterministicAcrossJobs)
{
    // Concurrent sweep workers each observe their own System through
    // the thread-local pointer; the per-cell sampler JSON (distinct
    // files via %p/%b) must be byte-identical whatever the pool size.
    ObsStateGuard guard;
    SweepSpec spec = SweepSpec::fullGrid(1, SimParams::scaled());
    spec.topologies = {Topology(2, 2)};
    spec.benches = {BenchmarkName::LU, BenchmarkName::FFT};
    spec.protocols = {ProtocolName::MESI, ProtocolName::DeNovo};

    obsConfig().sampleWindow = 400;
    obsConfig().sampleOut = "obs_jobs_%p_%b.json";

    auto sampleAll = [&](unsigned jobs) {
        setSweepJobs(jobs);
        CellCache cache; // fresh: every cell recomputed (and sampled)
        SweepEngine eng(spec);
        eng.run(cache);
        setSweepJobs(0);
        std::vector<std::string> out;
        for (ProtocolName p : spec.protocols) {
            for (BenchmarkName b : spec.benches) {
                const std::string f =
                    expandObsPath(obsConfig().sampleOut,
                                  protocolName(p), benchmarkName(b));
                out.push_back(testutil::fileBytes(f));
                EXPECT_FALSE(out.back().empty()) << f;
                std::remove(f.c_str());
            }
        }
        return out;
    };

    const auto serial = sampleAll(1);
    const auto parallel = sampleAll(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
}

TEST(BenchReport, ExtractsLabeledRatesAndFlagsRegressions)
{
    const char *currentDoc =
        "{\"kernel\": [{\"protocol\": \"MESI\", \"benchmark\": \"LU\","
        " \"events_per_sec\": 60.0},"
        " {\"protocol\": \"MESI\", \"benchmark\": \"FFT\","
        " \"events_per_sec\": 200.0}],"
        " \"before\": {\"micro\": {\"events_per_sec\": 10.0}},"
        " \"after\": {\"micro\": {\"events_per_sec\": 30.0}}}";
    const char *baselineDoc =
        "{\"kernel\": [{\"protocol\": \"MESI\", \"benchmark\": \"LU\","
        " \"events_per_sec\": 100.0},"
        " {\"protocol\": \"MESI\", \"benchmark\": \"FFT\","
        " \"events_per_sec\": 210.0}]}";

    JsonValue current, baseline;
    ASSERT_TRUE(jsonParse(currentDoc, current));
    ASSERT_TRUE(jsonParse(baselineDoc, baseline));

    const auto rates = extractBenchRates(current);
    ASSERT_EQ(rates.size(), 4u);
    EXPECT_EQ(rates[0].first, "MESI/LU");
    EXPECT_EQ(rates[2].first, "before.micro"); // key-chain fallback

    // LU dropped to 0.6x: beyond a 0.25 tolerance, within 0.5.
    bool regressed = false;
    Figure f = buildBenchFigure(current, &baseline, 0.25, regressed);
    EXPECT_TRUE(regressed);
    ASSERT_EQ(f.tables.size(), 1u);
    EXPECT_EQ(f.tables[0].rows.size(), 4u);

    regressed = true;
    buildBenchFigure(current, &baseline, 0.5, regressed);
    EXPECT_FALSE(regressed);

    // Without a baseline there is nothing to regress against.
    regressed = true;
    Figure plain = buildBenchFigure(current, nullptr, 0.25, regressed);
    EXPECT_FALSE(regressed);
    EXPECT_EQ(plain.tables[0].valueCols.size(), 1u);
}

} // namespace wastesim
