/**
 * Unit tests: the fault-tolerant sweep supervisor — CRC-32 cache
 * integrity, fault-injection determinism, the worker hand-off format,
 * quarantine records, and real crash-isolated worker processes
 * (re-exec'd `wastesim cell`) converging to caches byte-identical to
 * the threaded engine's.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "system/supervisor.hh"
#include "system/sweep_engine.hh"

namespace wastesim
{

namespace
{

class TempPath
{
  public:
    explicit TempPath(const std::string &p) : path_(p)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** The tiniest real grid: two cells on a 2x2 mesh. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.topologies = {Topology(2, 2)};
    spec.benches = {BenchmarkName::LU};
    spec.protocols = {ProtocolName::MESI, ProtocolName::DBypFull};
    return spec;
}

/** Supervisor config pointing at the freshly built CLI binary. */
SupervisorConfig
workerConfig(unsigned workers = 2)
{
    SupervisorConfig cfg;
    cfg.workers = workers;
    cfg.program = WASTESIM_BINARY_DIR "/wastesim";
    cfg.workerParamArgs = {"--scale", "1"};
    return cfg;
}

/** Deterministic fake cell result derived from the coordinates. */
RunResult
fakeCell(const SweepSpec &spec, const SweepCell &c)
{
    RunResult r;
    r.protocol = protocolName(spec.protocols[c.protoIdx]);
    r.benchmark = benchmarkName(spec.benches[c.benchIdx]);
    r.cycles = 1000 * (c.topoIdx + 1) + 10 * c.benchIdx + c.protoIdx;
    r.traffic.ldReqCtl = 0.25 + c.benchIdx;
    r.l1Waste.byCat[0] = 1.0 / 3.0 + c.protoIdx;
    r.maxLinkFlits = 7 + c.topoIdx;
    return r;
}

std::string
resultBlock(const RunResult &r)
{
    std::ostringstream os;
    os.precision(17);
    writeRunResult(os, r);
    return os.str();
}

} // namespace

TEST(Crc32, KnownAnswerAndSensitivity)
{
    // The CRC-32/ISO-HDLC check value: crc32("123456789").
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string()), 0u);
    // Any single-byte change must move the checksum.
    EXPECT_NE(crc32(std::string("123456789")),
              crc32(std::string("123456788")));
}

TEST(FaultSpec, ParsesDescribesAndRejects)
{
    FaultSpec f;
    std::string err;
    ASSERT_TRUE(FaultSpec::parse("crash:0.25,hang:0.5", f, &err));
    EXPECT_DOUBLE_EQ(f.crash, 0.25);
    EXPECT_DOUBLE_EQ(f.hang, 0.5);
    EXPECT_DOUBLE_EQ(f.corrupt, 0.0);
    EXPECT_TRUE(f.any());

    // describe() round-trips through parse().
    FaultSpec back;
    ASSERT_TRUE(FaultSpec::parse(f.describe(), back, &err));
    EXPECT_DOUBLE_EQ(back.crash, f.crash);
    EXPECT_DOUBLE_EQ(back.hang, f.hang);
    EXPECT_DOUBLE_EQ(back.corrupt, f.corrupt);

    EXPECT_FALSE(FaultSpec::parse("explode:0.5", f, &err));
    EXPECT_NE(err.find("unknown fault kind"), std::string::npos);
    EXPECT_FALSE(FaultSpec::parse("crash:1.5", f, &err));
    EXPECT_FALSE(FaultSpec::parse("crash", f, &err));
    EXPECT_FALSE(FaultSpec::parse("crash:0.7,hang:0.7", f, &err));
    EXPECT_NE(err.find("sum"), std::string::npos);

    FaultSpec none;
    ASSERT_TRUE(FaultSpec::parse("", none, &err));
    EXPECT_FALSE(none.any());
}

TEST(FaultSpec, RejectsMalformedProbabilitiesAndDuplicates)
{
    FaultSpec f;
    std::string err;

    // NaN compares false against every bound, so a naive
    // "p < 0 || p > 1" check would accept it.
    EXPECT_FALSE(FaultSpec::parse("crash:nan", f, &err));
    EXPECT_NE(err.find("not in [0, 1]"), std::string::npos);
    EXPECT_FALSE(FaultSpec::parse("crash:inf", f, &err));

    // strtod("") consumes the whole (empty) string; the end-pointer
    // test alone would accept it as probability 0.
    EXPECT_FALSE(FaultSpec::parse("crash:", f, &err));
    EXPECT_NE(err.find("not in [0, 1]"), std::string::npos);

    EXPECT_FALSE(FaultSpec::parse("crash:-0.1", f, &err));
    EXPECT_FALSE(FaultSpec::parse("crash:0.5junk", f, &err));

    // A repeated kind is a typo'd spec, not a refinement.
    EXPECT_FALSE(FaultSpec::parse("crash:0.1,crash:0.2", f, &err));
    EXPECT_NE(err.find("duplicate fault kind"), std::string::npos);

    // Whole-spec validity: a good prefix must not survive a bad item.
    ASSERT_TRUE(FaultSpec::parse("hang:0.5", f, &err));
    EXPECT_FALSE(FaultSpec::parse("hang:0.5,corrupt:bogus", f, &err));
}

TEST(FaultDraw, IsDeterministicPerCellAndAttempt)
{
    FaultSpec f;
    ASSERT_TRUE(FaultSpec::parse("crash:0.3,hang:0.3,corrupt:0.3", f));

    // Same (seed, cell, attempt) always draws the same fate — that is
    // what lets the parent predict what its child will do.
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
        EXPECT_EQ(faultDraw(f, 7, "cellA", attempt),
                  faultDraw(f, 7, "cellA", attempt));
    }
    // ...and the draw depends on every input.
    bool varies = false;
    for (unsigned attempt = 1; attempt < 16 && !varies; ++attempt)
        varies = faultDraw(f, 7, "cellA", attempt) !=
                 faultDraw(f, 7, "cellA", 0);
    EXPECT_TRUE(varies);

    // A certain crash draws only crash flavors; a zero spec is inert.
    FaultSpec allCrash;
    ASSERT_TRUE(FaultSpec::parse("crash:1.0", allCrash));
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
        const FaultKind k = faultDraw(allCrash, 1, "x", attempt);
        EXPECT_TRUE(k == FaultKind::CrashSegv ||
                    k == FaultKind::CrashKill ||
                    k == FaultKind::CrashExit);
    }
    EXPECT_EQ(faultDraw(FaultSpec{}, 1, "x", 0), FaultKind::None);
}

TEST(WorkerOutput, RoundTripsAndDetectsEveryKindOfDamage)
{
    const SweepSpec spec = tinySpec();
    const RunResult ref = fakeCell(spec, spec.cellAt(0));
    const std::string id = spec.cellKey(spec.cellAt(0));
    const std::string good = formatWorkerOutput(id, ref);

    TempPath tmp("worker_output.tmp");
    writeBytes(tmp.path(), good);
    RunResult r;
    std::string err;
    ASSERT_TRUE(parseWorkerOutput(tmp.path(), id, r, &err)) << err;
    EXPECT_EQ(resultBlock(r), resultBlock(ref));

    // Corruption: the CRC catches any payload flip.
    std::string bad = good;
    corruptWorkerOutput(bad, 42, 0);
    EXPECT_NE(bad, good);
    writeBytes(tmp.path(), bad);
    EXPECT_FALSE(parseWorkerOutput(tmp.path(), id, r, &err));
    EXPECT_NE(err.find("checksum mismatch"), std::string::npos);

    // Truncation.
    writeBytes(tmp.path(), good.substr(0, good.size() / 2));
    EXPECT_FALSE(parseWorkerOutput(tmp.path(), id, r, &err));
    EXPECT_NE(err.find("truncated"), std::string::npos);

    // A result for the wrong cell must be rejected even though its
    // checksum is valid — this is the parent/child drift guard.
    writeBytes(tmp.path(), good);
    EXPECT_FALSE(parseWorkerOutput(tmp.path(), "some-other-cell", r,
                                   &err));
    EXPECT_NE(err.find("expected"), std::string::npos);

    // Missing file and garbage header.
    EXPECT_FALSE(parseWorkerOutput("no_such_output.tmp", id, r, &err));
    writeBytes(tmp.path(), "not a worker output\n");
    EXPECT_FALSE(parseWorkerOutput(tmp.path(), id, r, &err));
}

TEST(CellCache, QuarantineRecordsSurviveSaveLoadAndMerge)
{
    const SweepSpec spec = tinySpec();
    const std::string k0 = spec.cellKey(spec.cellAt(0));
    const std::string k1 = spec.cellKey(spec.cellAt(1));

    CellCache cache;
    cache.put(k0, fakeCell(spec, spec.cellAt(0)));
    cache.quarantine(k1, 4, "signal 11 (Segmentation fault)");
    EXPECT_EQ(cache.numQuarantined(), 1u);

    TempPath tmp("quarantine_roundtrip.cache");
    ASSERT_TRUE(cache.save(tmp.path()));
    CellCache back;
    ASSERT_TRUE(back.load(tmp.path()));
    EXPECT_EQ(back.size(), 1u);
    CellFailure cf;
    ASSERT_TRUE(back.isQuarantined(k1, &cf));
    EXPECT_EQ(cf.attempts, 4u);
    EXPECT_EQ(cf.reason, "signal 11 (Segmentation fault)");

    // A result beats a quarantine in either merge direction.
    CellCache healed;
    healed.put(k1, fakeCell(spec, spec.cellAt(1)));
    ASSERT_TRUE(back.merge(healed));
    EXPECT_FALSE(back.isQuarantined(k1));
    EXPECT_EQ(back.size(), 2u);

    CellCache quarOnly;
    quarOnly.quarantine(k1, 9, "whatever");
    ASSERT_TRUE(back.merge(quarOnly));
    EXPECT_FALSE(back.isQuarantined(k1)); // the result won

    // Two quarantines keep the higher attempt count.
    CellCache qa, qb;
    qa.quarantine(k0, 2, "reason-a");
    qb.quarantine(k0, 5, "reason-b");
    ASSERT_TRUE(qa.merge(qb));
    ASSERT_TRUE(qa.isQuarantined(k0, &cf));
    EXPECT_EQ(cf.attempts, 5u);
    EXPECT_EQ(cf.reason, "reason-b");

    // put() lifts the quarantine: a computed cell is no longer poison.
    qa.put(k0, fakeCell(spec, spec.cellAt(0)));
    EXPECT_FALSE(qa.isQuarantined(k0));
}

TEST(CellCache, V2DetectsCorruptionStrictlyAndSalvages)
{
    const SweepSpec spec = tinySpec();
    CellCache cache;
    for (std::size_t i = 0; i < spec.numCells(); ++i)
        cache.put(spec.cellKey(spec.cellAt(i)),
                  fakeCell(spec, spec.cellAt(i)));

    TempPath tmp("v2_corrupt.cache");
    ASSERT_TRUE(cache.save(tmp.path()));

    // Flip one byte inside the FIRST cell's result block (after its
    // "= <len> <crc>" meta line).
    std::string bytes = fileBytes(tmp.path());
    std::size_t pos = bytes.find("= ");
    ASSERT_NE(pos, std::string::npos);
    pos = bytes.find('\n', pos);
    ASSERT_NE(pos, std::string::npos);
    bytes[pos + 5] ^= 0x01;
    writeBytes(tmp.path(), bytes);

    // Strict: the whole load fails, names the cell and its offset.
    CellCache strict;
    CacheLoadReport rep;
    EXPECT_FALSE(
        strict.load(tmp.path(), rep, CacheLoadMode::Strict));
    EXPECT_EQ(strict.size(), 0u);
    EXPECT_TRUE(rep.found);
    EXPECT_TRUE(rep.formatOk);
    EXPECT_NE(rep.error.find("byte offset"), std::string::npos);
    EXPECT_NE(rep.error.find("checksum mismatch"), std::string::npos);

    // The plain load() is the strict one.
    CellCache plain;
    EXPECT_FALSE(plain.load(tmp.path()));

    // Salvage: every other cell survives, the bad key is reported.
    CellCache salvage;
    CacheLoadReport srep;
    EXPECT_TRUE(
        salvage.load(tmp.path(), srep, CacheLoadMode::Salvage));
    EXPECT_EQ(salvage.size(), spec.numCells() - 1);
    EXPECT_EQ(srep.badCells, 1u);
    ASSERT_EQ(srep.badKeys.size(), 1u);
    EXPECT_FALSE(salvage.has(srep.badKeys[0]));

    // An engine run over the salvaged cache recomputes exactly the
    // dropped cell and converges back to the undamaged bytes.
    SweepEngine eng(spec);
    eng.setCompute(fakeCell);
    eng.run(salvage);
    EXPECT_EQ(eng.cellsComputed(), 1u);
    TempPath again("v2_corrupt_healed.cache");
    ASSERT_TRUE(salvage.save(again.path()));
    TempPath refPath("v2_corrupt_ref.cache");
    ASSERT_TRUE(cache.save(refPath.path()));
    EXPECT_EQ(fileBytes(again.path()), fileBytes(refPath.path()));
}

TEST(CellCache, V1FilesStillLoad)
{
    const SweepSpec spec = tinySpec();
    const std::string k0 = spec.cellKey(spec.cellAt(0));
    const RunResult ref = fakeCell(spec, spec.cellAt(0));

    // Hand-written v1 file: magic, count, then bare key + block pairs
    // with no length/CRC meta.
    TempPath tmp("v1_compat.cache");
    writeBytes(tmp.path(), "wastesim-cells-v1\n1\n" + k0 + "\n" +
                               resultBlock(ref));

    CellCache cache;
    ASSERT_TRUE(cache.load(tmp.path()));
    RunResult r;
    ASSERT_TRUE(cache.get(k0, r));
    EXPECT_EQ(resultBlock(r), resultBlock(ref));
    EXPECT_EQ(cache.numQuarantined(), 0u);

    // A truncated v2 file (counts promise more cells than present)
    // fails strictly but salvages what was read.
    TempPath t2("v2_truncated.cache");
    {
        CellCache two;
        two.put(k0, ref);
        two.put(spec.cellKey(spec.cellAt(1)),
                fakeCell(spec, spec.cellAt(1)));
        ASSERT_TRUE(two.save(t2.path()));
    }
    std::string bytes = fileBytes(t2.path());
    // Cut inside the SECOND cell's block so the first stays whole.
    std::size_t meta = bytes.find("\n= ");
    ASSERT_NE(meta, std::string::npos);
    meta = bytes.find("\n= ", meta + 1);
    ASSERT_NE(meta, std::string::npos);
    writeBytes(t2.path(), bytes.substr(0, meta + 20));
    CellCache strict;
    EXPECT_FALSE(strict.load(t2.path()));
    CellCache salvage;
    CacheLoadReport rep;
    EXPECT_TRUE(salvage.load(t2.path(), rep, CacheLoadMode::Salvage));
    EXPECT_TRUE(rep.truncated);
    EXPECT_EQ(salvage.size(), 1u);
}

TEST(SweepEngine, StopCheckDrainsAndResumes)
{
    SweepSpec spec = tinySpec();
    spec.benches = {BenchmarkName::LU, BenchmarkName::FFT,
                    BenchmarkName::Barnes};

    setSweepJobs(1);
    bool stop = false;
    std::size_t computed = 0;
    CellCache cache;
    {
        SweepEngine eng(spec);
        eng.setCompute([&](const SweepSpec &s, const SweepCell &c) {
            ++computed;
            stop = computed >= 2; // request drain after two cells
            return fakeCell(s, c);
        });
        eng.setStopCheck([&] { return stop; });
        eng.run(cache);
        EXPECT_TRUE(eng.interrupted());
        EXPECT_EQ(eng.cellsComputed(), 2u);
    }
    EXPECT_EQ(cache.size(), 2u);

    // The resumed run serves the drained cells and finishes the rest.
    {
        SweepEngine eng(spec);
        eng.setCompute(fakeCell);
        eng.run(cache);
        EXPECT_FALSE(eng.interrupted());
        EXPECT_EQ(eng.cellsHit(), 2u);
        EXPECT_EQ(eng.cellsComputed(), spec.numCells() - 2);
    }
    setSweepJobs(0);
}

TEST(SweepEngine, QuarantinedCellsBecomeHolesUnlessRetried)
{
    const SweepSpec spec = tinySpec();
    const std::string k1 = spec.cellKey(spec.cellAt(1));

    CellCache cache;
    cache.quarantine(k1, 3, "exit 3");

    // Default: the quarantined cell is skipped and annotated.
    {
        SweepEngine eng(spec);
        eng.setCompute(fakeCell);
        const Sweep s = eng.run(cache).at(0);
        EXPECT_EQ(eng.cellsComputed(), 1u);
        EXPECT_EQ(eng.cellsQuarantined(), 1u);
        EXPECT_TRUE(s.holeAt(0, 1));
        EXPECT_EQ(s.holes[0][1], "exit 3");
        EXPECT_EQ(s.numHoles(), 1u);
        EXPECT_FALSE(cache.has(k1));
    }

    // --retry-quarantined recomputes it and lifts the record.
    {
        SweepEngine eng(spec);
        eng.setCompute(fakeCell);
        eng.setRetryQuarantined(true);
        const Sweep s = eng.run(cache).at(0);
        EXPECT_EQ(eng.cellsQuarantined(), 0u);
        EXPECT_FALSE(s.holeAt(0, 1));
        EXPECT_TRUE(cache.has(k1));
        EXPECT_FALSE(cache.isQuarantined(k1));
    }
}

// --- real worker processes --------------------------------------------------

TEST(Supervisor, FaultFreeRunMatchesEngineByteForByte)
{
    const SweepSpec spec = tinySpec();

    CellCache engineCache;
    SweepEngine eng(spec);
    const Sweep ref = eng.run(engineCache).at(0);

    CellCache supCache;
    SweepSupervisor sup(spec, workerConfig());
    const Sweep got = sup.run(supCache).at(0);
    EXPECT_EQ(sup.cellsComputed(), spec.numCells());
    EXPECT_EQ(sup.retries(), 0u);
    EXPECT_FALSE(sup.interrupted());

    // The supervised cache must be byte-identical to the threaded
    // engine's: same cells, same canonical serialization.
    EXPECT_EQ(engineCache.serialized(), supCache.serialized());
    for (unsigned p = 0; p < 2; ++p)
        EXPECT_EQ(got.results[0][p].cycles, ref.results[0][p].cycles);

    // A second supervised run over the same cache is all hits.
    SweepSupervisor again(spec, workerConfig());
    again.run(supCache);
    EXPECT_EQ(again.cellsHit(), spec.numCells());
    EXPECT_EQ(again.cellsComputed(), 0u);
}

TEST(Supervisor, CrashingWorkersRetryAndConverge)
{
    const SweepSpec spec = tinySpec();

    CellCache engineCache;
    SweepEngine eng(spec);
    eng.run(engineCache);

    // Half the attempts crash (SIGSEGV / SIGKILL / exit 3, picked
    // deterministically), yet the sweep converges to the identical
    // cache — crash isolation plus retry in one assertion.
    SupervisorConfig cfg = workerConfig();
    ASSERT_TRUE(FaultSpec::parse("crash:0.5", cfg.faults));
    cfg.faultSeed = 5;
    cfg.maxRetries = 10;
    cfg.backoffBaseMs = 10;

    CellCache supCache;
    SweepSupervisor sup(spec, cfg);
    sup.run(supCache);
    EXPECT_EQ(sup.cellsComputed(), spec.numCells());
    EXPECT_EQ(sup.cellsQuarantined(), 0u);
    EXPECT_EQ(engineCache.serialized(), supCache.serialized());
}

TEST(Supervisor, CorruptOutputIsDetectedNeverCached)
{
    const SweepSpec spec = tinySpec();

    CellCache engineCache;
    SweepEngine eng(spec);
    eng.run(engineCache);

    SupervisorConfig cfg = workerConfig();
    ASSERT_TRUE(FaultSpec::parse("corrupt:0.5", cfg.faults));
    cfg.faultSeed = 11;
    cfg.maxRetries = 10;
    cfg.backoffBaseMs = 10;

    CellCache supCache;
    SweepSupervisor sup(spec, cfg);
    sup.run(supCache);
    EXPECT_EQ(sup.cellsComputed(), spec.numCells());
    // Convergence to identical bytes proves no corrupt result was
    // ever accepted into the cache.
    EXPECT_EQ(engineCache.serialized(), supCache.serialized());
}

TEST(Supervisor, PoisonCellsQuarantineThenHealWithRetryFlag)
{
    const SweepSpec spec = tinySpec();

    // Every attempt crashes: both cells exhaust their retries and
    // land in quarantine with their failure reason.
    SupervisorConfig cfg = workerConfig();
    ASSERT_TRUE(FaultSpec::parse("crash:1.0", cfg.faults));
    cfg.faultSeed = 2;
    cfg.maxRetries = 1;
    cfg.backoffBaseMs = 5;

    CellCache cache;
    {
        SweepSupervisor sup(spec, cfg);
        const Sweep s = sup.run(cache).at(0);
        EXPECT_EQ(sup.cellsComputed(), 0u);
        EXPECT_EQ(sup.cellsQuarantined(), spec.numCells());
        EXPECT_EQ(sup.retries(), spec.numCells());
        EXPECT_EQ(s.numHoles(), spec.numCells());
        EXPECT_EQ(cache.numQuarantined(), spec.numCells());
        CellFailure cf;
        ASSERT_TRUE(cache.isQuarantined(
            spec.cellKey(spec.cellAt(0)), &cf));
        EXPECT_EQ(cf.attempts, 2u); // 1 try + 1 retry
    }

    // Without --retry-quarantined the records are honored as holes.
    {
        SweepSupervisor sup(spec, workerConfig());
        const Sweep s = sup.run(cache).at(0);
        EXPECT_EQ(sup.cellsComputed(), 0u);
        EXPECT_EQ(sup.cellsQuarantined(), spec.numCells());
        EXPECT_EQ(s.numHoles(), spec.numCells());
    }

    // With it (and the faults gone) the cells heal, and the final
    // cache equals a never-faulted engine run's.
    SupervisorConfig healCfg = workerConfig();
    healCfg.retryQuarantined = true;
    SweepSupervisor heal(spec, healCfg);
    const Sweep s = heal.run(cache).at(0);
    EXPECT_EQ(heal.cellsComputed(), spec.numCells());
    EXPECT_EQ(s.numHoles(), 0u);
    EXPECT_EQ(cache.numQuarantined(), 0u);

    CellCache engineCache;
    SweepEngine eng(spec);
    eng.run(engineCache);
    EXPECT_EQ(engineCache.serialized(), cache.serialized());
}

TEST(Supervisor, HungWorkersAreKilledAtTheDeadline)
{
    SweepSpec spec = tinySpec();
    spec.protocols = {ProtocolName::MESI}; // one cell is enough

    SupervisorConfig cfg = workerConfig(1);
    ASSERT_TRUE(FaultSpec::parse("hang:1.0", cfg.faults));
    cfg.faultSeed = 1;
    cfg.maxRetries = 0;
    cfg.deadlineMs = 300;

    CellCache cache;
    SweepSupervisor sup(spec, cfg);
    const Sweep s = sup.run(cache).at(0);
    EXPECT_EQ(sup.deadlineKills(), 1u);
    EXPECT_EQ(sup.cellsQuarantined(), 1u);
    CellFailure cf;
    ASSERT_TRUE(
        cache.isQuarantined(spec.cellKey(spec.cellAt(0)), &cf));
    EXPECT_NE(cf.reason.find("deadline exceeded"), std::string::npos);
    EXPECT_TRUE(s.holeAt(0, 0));
}

TEST(Supervisor, AutosavePersistsCellsAsTheyComplete)
{
    const SweepSpec spec = tinySpec();
    TempPath tmp("supervisor_autosave.cache");

    SupervisorConfig cfg = workerConfig();
    cfg.autosavePath = tmp.path();
    CellCache cache;
    SweepSupervisor sup(spec, cfg);
    sup.run(cache);

    // The autosaved file holds the complete grid — a killed
    // supervisor would have left every completed cell behind.
    CellCache back;
    ASSERT_TRUE(back.load(tmp.path()));
    EXPECT_EQ(back.serialized(), cache.serialized());
}

} // namespace wastesim
