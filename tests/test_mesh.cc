/** Mesh geometry tests, parameterized over runtime topologies. */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace wastesim
{

/** Geometry invariants for one dimX x dimY mesh. */
class MeshGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
  protected:
    Mesh mesh{GetParam().first, GetParam().second};
};

TEST_P(MeshGeometry, CoordinateRoundTrip)
{
    EXPECT_EQ(mesh.numTiles(), mesh.dimX() * mesh.dimY());
    for (NodeId n = 0; n < mesh.numTiles(); ++n) {
        EXPECT_LT(mesh.xOf(n), mesh.dimX());
        EXPECT_LT(mesh.yOf(n), mesh.dimY());
        EXPECT_EQ(mesh.tileAt(mesh.xOf(n), mesh.yOf(n)), n);
    }
}

TEST_P(MeshGeometry, ManhattanSymmetricAndBounded)
{
    for (NodeId a = 0; a < mesh.numTiles(); ++a) {
        for (NodeId b = 0; b < mesh.numTiles(); ++b) {
            EXPECT_EQ(mesh.manhattan(a, b), mesh.manhattan(b, a));
            EXPECT_LE(mesh.manhattan(a, b),
                      (mesh.dimX() - 1) + (mesh.dimY() - 1));
            EXPECT_EQ(mesh.hops(a, b), mesh.manhattan(a, b) + 1);
        }
    }
    // The corner-to-corner distance is the diameter.
    EXPECT_EQ(mesh.manhattan(0, mesh.numTiles() - 1),
              (mesh.dimX() - 1) + (mesh.dimY() - 1));
}

TEST_P(MeshGeometry, XyRouteEnumeration)
{
    for (NodeId a = 0; a < mesh.numTiles(); ++a) {
        for (NodeId b = 0; b < mesh.numTiles(); ++b) {
            const auto route = mesh.xyRoute(a, b);
            ASSERT_FALSE(route.empty());
            EXPECT_EQ(route.front(), a);
            EXPECT_EQ(route.back(), b);
            EXPECT_EQ(route.size(), mesh.manhattan(a, b) + 1);
            // Consecutive tiles are mesh neighbors, and X is
            // exhausted before Y (dimension order).
            bool seen_y = false;
            for (std::size_t i = 1; i < route.size(); ++i) {
                EXPECT_EQ(mesh.manhattan(route[i - 1], route[i]), 1u);
                const bool y_step =
                    mesh.yOf(route[i]) != mesh.yOf(route[i - 1]);
                if (y_step)
                    seen_y = true;
                else
                    EXPECT_FALSE(seen_y) << "X step after a Y step";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MeshGeometry,
    ::testing::Values(std::pair<unsigned, unsigned>{2, 2},
                      std::pair<unsigned, unsigned>{4, 4},
                      std::pair<unsigned, unsigned>{8, 2},
                      std::pair<unsigned, unsigned>{8, 8}),
    [](const auto &info) {
        return std::to_string(info.param.first) + "x" +
               std::to_string(info.param.second);
    });

// --- regression pins: the paper's 4x4 numbers ---------------------------

TEST(Mesh, Paper4x4Coordinates)
{
    const Mesh mesh; // defaults to 4x4
    EXPECT_EQ(mesh.dimX(), 4u);
    EXPECT_EQ(mesh.dimY(), 4u);
    EXPECT_EQ(mesh.numTiles(), 16u);
    EXPECT_EQ(mesh.xOf(0), 0u);
    EXPECT_EQ(mesh.yOf(0), 0u);
    EXPECT_EQ(mesh.xOf(5), 1u);
    EXPECT_EQ(mesh.yOf(5), 1u);
    EXPECT_EQ(mesh.xOf(15), 3u);
    EXPECT_EQ(mesh.yOf(15), 3u);
    EXPECT_EQ(mesh.tileAt(3, 3), 15u);
}

TEST(Mesh, Paper4x4Distances)
{
    const Mesh mesh;
    EXPECT_EQ(mesh.manhattan(0, 0), 0u);
    EXPECT_EQ(mesh.manhattan(0, 15), 6u);
    EXPECT_EQ(mesh.manhattan(0, 3), 3u);
    EXPECT_EQ(mesh.manhattan(3, 12), 6u);
    EXPECT_EQ(mesh.manhattan(5, 6), 1u);
    EXPECT_EQ(mesh.hops(0, 0), 1u);
    EXPECT_EQ(mesh.hops(0, 15), 7u);
}

TEST(Mesh, Paper4x4CornerRoute)
{
    const Mesh mesh;
    const auto route = mesh.xyRoute(0, 15);
    const std::vector<NodeId> expect = {0, 1, 2, 3, 7, 11, 15};
    EXPECT_EQ(route, expect);
}

TEST(Mesh, Paper4x4XBeforeY)
{
    const Mesh mesh;
    const auto route = mesh.xyRoute(0, 5); // (0,0) -> (1,1)
    const std::vector<NodeId> expect = {0, 1, 5};
    EXPECT_EQ(route, expect);
}

TEST(Mesh, SelfRouteIsSelf)
{
    const Mesh mesh;
    const auto route = mesh.xyRoute(7, 7);
    const std::vector<NodeId> expect = {7};
    EXPECT_EQ(route, expect);
}

TEST(Mesh, NonSquareGeometry)
{
    const Mesh mesh(8, 2);
    EXPECT_EQ(mesh.numTiles(), 16u);
    EXPECT_EQ(mesh.xOf(9), 1u);
    EXPECT_EQ(mesh.yOf(9), 1u);
    EXPECT_EQ(mesh.manhattan(0, 15), 8u);
    const auto route = mesh.xyRoute(8, 7); // (0,1) -> (7,0)
    EXPECT_EQ(route.size(), 9u);
    EXPECT_EQ(route.front(), 8u);
    EXPECT_EQ(route.back(), 7u);
}

} // namespace wastesim
