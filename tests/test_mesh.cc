/** Unit tests: mesh geometry, hop counts, XY routing. */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace wastesim
{

TEST(Mesh, Coordinates)
{
    EXPECT_EQ(Mesh::xOf(0), 0u);
    EXPECT_EQ(Mesh::yOf(0), 0u);
    EXPECT_EQ(Mesh::xOf(5), 1u);
    EXPECT_EQ(Mesh::yOf(5), 1u);
    EXPECT_EQ(Mesh::xOf(15), 3u);
    EXPECT_EQ(Mesh::yOf(15), 3u);
    EXPECT_EQ(Mesh::tileAt(3, 3), 15u);
}

TEST(Mesh, ManhattanDistance)
{
    EXPECT_EQ(Mesh::manhattan(0, 0), 0u);
    EXPECT_EQ(Mesh::manhattan(0, 15), 6u);
    EXPECT_EQ(Mesh::manhattan(0, 3), 3u);
    EXPECT_EQ(Mesh::manhattan(3, 12), 6u);
    EXPECT_EQ(Mesh::manhattan(5, 6), 1u);
    // Symmetry.
    for (NodeId a = 0; a < numTiles; ++a)
        for (NodeId b = 0; b < numTiles; ++b)
            EXPECT_EQ(Mesh::manhattan(a, b), Mesh::manhattan(b, a));
}

TEST(Mesh, HopsIncludeEjection)
{
    EXPECT_EQ(Mesh::hops(0, 0), 1u);
    EXPECT_EQ(Mesh::hops(0, 15), 7u);
}

TEST(Mesh, XyRouteEndpoints)
{
    const auto route = Mesh::xyRoute(0, 15);
    ASSERT_GE(route.size(), 2u);
    EXPECT_EQ(route.front(), 0u);
    EXPECT_EQ(route.back(), 15u);
    // Route length = manhattan + 1 tiles.
    EXPECT_EQ(route.size(), Mesh::manhattan(0, 15) + 1);
}

TEST(Mesh, XyRouteGoesXFirst)
{
    const auto route = Mesh::xyRoute(0, 5); // (0,0) -> (1,1)
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(route[1], 1u); // x first
    EXPECT_EQ(route[2], 5u);
}

TEST(Mesh, XyRouteSelf)
{
    const auto route = Mesh::xyRoute(7, 7);
    ASSERT_EQ(route.size(), 1u);
    EXPECT_EQ(route[0], 7u);
}

TEST(Mesh, XyRouteAdjacentTilesOnly)
{
    for (NodeId a = 0; a < numTiles; ++a) {
        for (NodeId b = 0; b < numTiles; ++b) {
            const auto route = Mesh::xyRoute(a, b);
            for (std::size_t i = 1; i < route.size(); ++i)
                EXPECT_EQ(Mesh::manhattan(route[i - 1], route[i]), 1u);
        }
    }
}

} // namespace wastesim
