/** Unit tests: address math, word masks, RNG, text tables. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/topology.hh"
#include "common/types.hh"
#include "common/word_mask.hh"

namespace wastesim
{

TEST(Types, LineAndWordMath)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 64u);
    EXPECT_EQ(lineAddr(130), 128u);
    EXPECT_EQ(wordIndex(0), 0u);
    EXPECT_EQ(wordIndex(4), 1u);
    EXPECT_EQ(wordIndex(63), 15u);
    EXPECT_EQ(wordIndex(68), 1u);
    EXPECT_EQ(wordNumber(64), 16u);
    EXPECT_TRUE(isLineAligned(128));
    EXPECT_FALSE(isLineAligned(132));
}

TEST(Types, Geometry)
{
    EXPECT_EQ(numTiles, 16u);
    EXPECT_EQ(wordsPerLine, 16u);
    EXPECT_EQ(wordsPerFlit, 4u);
    EXPECT_EQ(maxWordsPerMsg, 16u);
}

TEST(Types, HomeSliceInterleave)
{
    const Topology topo;
    // 256-byte interleave: four consecutive lines share a slice.
    const Addr base = 1u << 20;
    const NodeId s = topo.homeSlice(base);
    EXPECT_EQ(topo.homeSlice(base + 64), s);
    EXPECT_EQ(topo.homeSlice(base + 128), s);
    EXPECT_EQ(topo.homeSlice(base + 192), s);
    EXPECT_NE(topo.homeSlice(base + 256), s);
    // All 16 slices are covered.
    bool seen[16] = {};
    for (Addr a = base; a < base + 16 * 256; a += 256)
        seen[topo.homeSlice(a)] = true;
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(Types, MemChannelInterleave)
{
    const Topology topo;
    const Addr base = 1u << 20;
    bool seen[4] = {};
    for (unsigned i = 0; i < 4; ++i)
        seen[topo.memChannel(base + i * 64)] = true;
    for (bool b : seen)
        EXPECT_TRUE(b);
    // MC tiles are the corners.
    EXPECT_EQ(topo.memCtrlTile(0), 0u);
    EXPECT_EQ(topo.memCtrlTile(1), 3u);
    EXPECT_EQ(topo.memCtrlTile(2), 12u);
    EXPECT_EQ(topo.memCtrlTile(3), 15u);
}

TEST(WordMask, Basics)
{
    WordMask m;
    EXPECT_TRUE(m.empty());
    m.set(3);
    m.set(15);
    EXPECT_TRUE(m.test(3));
    EXPECT_TRUE(m.test(15));
    EXPECT_FALSE(m.test(0));
    EXPECT_EQ(m.count(), 2u);
    m.clear(3);
    EXPECT_FALSE(m.test(3));
    EXPECT_EQ(WordMask::full().count(), 16u);
    EXPECT_TRUE(WordMask::full().isFull());
}

TEST(WordMask, SetOperations)
{
    const WordMask a = WordMask::range(0, 8);
    const WordMask b = WordMask::range(4, 8);
    EXPECT_EQ((a | b), WordMask::range(0, 12));
    EXPECT_EQ((a & b), WordMask::range(4, 4));
    EXPECT_EQ((a - b), WordMask::range(0, 4));
    EXPECT_EQ(WordMask::single(5).count(), 1u);
    EXPECT_TRUE(WordMask::single(5).test(5));
}

TEST(WordMask, RangeEdgeCases)
{
    EXPECT_TRUE(WordMask::range(0, 0).empty());
    EXPECT_TRUE(WordMask::range(0, 16).isFull());
    EXPECT_EQ(WordMask::range(15, 1).raw(), 0x8000u);
    EXPECT_EQ(WordMask::range(12, 16).count(), 4u); // clipped at 16
}

TEST(WordMask, ToString)
{
    WordMask m = WordMask::single(1);
    EXPECT_EQ(m.toString(), "0100000000000000");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool diff = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        diff |= a2.next() != c.next();
    EXPECT_TRUE(diff);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng r(99);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Stats, TextTableAlignsColumns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"ccc", "d"});
    const std::string s = t.render();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("ccc"), std::string::npos);
    EXPECT_NE(s.find("="), std::string::npos);
}

TEST(Stats, Formatting)
{
    EXPECT_EQ(pct(0.395), "39.5%");
    EXPECT_EQ(fixed(1.5, 1), "1.5");
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

} // namespace wastesim
