/** Unit tests: address math, word masks, RNG, flat map, text tables. */

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/topology.hh"
#include "common/types.hh"
#include "common/word_mask.hh"

namespace wastesim
{

TEST(Types, LineAndWordMath)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 64u);
    EXPECT_EQ(lineAddr(130), 128u);
    EXPECT_EQ(wordIndex(0), 0u);
    EXPECT_EQ(wordIndex(4), 1u);
    EXPECT_EQ(wordIndex(63), 15u);
    EXPECT_EQ(wordIndex(68), 1u);
    EXPECT_EQ(wordNumber(64), 16u);
    EXPECT_TRUE(isLineAligned(128));
    EXPECT_FALSE(isLineAligned(132));
}

TEST(Types, Geometry)
{
    EXPECT_EQ(numTiles, 16u);
    EXPECT_EQ(wordsPerLine, 16u);
    EXPECT_EQ(wordsPerFlit, 4u);
    EXPECT_EQ(maxWordsPerMsg, 16u);
}

TEST(Types, HomeSliceInterleave)
{
    const Topology topo;
    // 256-byte interleave: four consecutive lines share a slice.
    const Addr base = 1u << 20;
    const NodeId s = topo.homeSlice(base);
    EXPECT_EQ(topo.homeSlice(base + 64), s);
    EXPECT_EQ(topo.homeSlice(base + 128), s);
    EXPECT_EQ(topo.homeSlice(base + 192), s);
    EXPECT_NE(topo.homeSlice(base + 256), s);
    // All 16 slices are covered.
    bool seen[16] = {};
    for (Addr a = base; a < base + 16 * 256; a += 256)
        seen[topo.homeSlice(a)] = true;
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(Types, MemChannelInterleave)
{
    const Topology topo;
    const Addr base = 1u << 20;
    bool seen[4] = {};
    for (unsigned i = 0; i < 4; ++i)
        seen[topo.memChannel(base + i * 64)] = true;
    for (bool b : seen)
        EXPECT_TRUE(b);
    // MC tiles are the corners.
    EXPECT_EQ(topo.memCtrlTile(0), 0u);
    EXPECT_EQ(topo.memCtrlTile(1), 3u);
    EXPECT_EQ(topo.memCtrlTile(2), 12u);
    EXPECT_EQ(topo.memCtrlTile(3), 15u);
}

TEST(WordMask, Basics)
{
    WordMask m;
    EXPECT_TRUE(m.empty());
    m.set(3);
    m.set(15);
    EXPECT_TRUE(m.test(3));
    EXPECT_TRUE(m.test(15));
    EXPECT_FALSE(m.test(0));
    EXPECT_EQ(m.count(), 2u);
    m.clear(3);
    EXPECT_FALSE(m.test(3));
    EXPECT_EQ(WordMask::full().count(), 16u);
    EXPECT_TRUE(WordMask::full().isFull());
}

TEST(WordMask, SetOperations)
{
    const WordMask a = WordMask::range(0, 8);
    const WordMask b = WordMask::range(4, 8);
    EXPECT_EQ((a | b), WordMask::range(0, 12));
    EXPECT_EQ((a & b), WordMask::range(4, 4));
    EXPECT_EQ((a - b), WordMask::range(0, 4));
    EXPECT_EQ(WordMask::single(5).count(), 1u);
    EXPECT_TRUE(WordMask::single(5).test(5));
}

TEST(WordMask, RangeEdgeCases)
{
    EXPECT_TRUE(WordMask::range(0, 0).empty());
    EXPECT_TRUE(WordMask::range(0, 16).isFull());
    EXPECT_EQ(WordMask::range(15, 1).raw(), 0x8000u);
    EXPECT_EQ(WordMask::range(12, 16).count(), 4u); // clipped at 16
}

TEST(WordMask, ToString)
{
    WordMask m = WordMask::single(1);
    EXPECT_EQ(m.toString(), "0100000000000000");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool diff = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        diff |= a2.next() != c.next();
    EXPECT_TRUE(diff);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng r(99);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Stats, TextTableAlignsColumns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"ccc", "d"});
    const std::string s = t.render();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("ccc"), std::string::npos);
    EXPECT_NE(s.find("="), std::string::npos);
}

TEST(Stats, Formatting)
{
    EXPECT_EQ(pct(0.395), "39.5%");
    EXPECT_EQ(fixed(1.5, 1), "1.5");
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(FlatMap, InsertFindEmplace)
{
    FlatMap<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);

    auto [p, inserted] = m.emplace(7, 70);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*p, 70);

    // unordered_map emplace semantics: the existing value is kept.
    auto [p2, inserted2] = m.emplace(7, 99);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(*p2, 70);
    EXPECT_EQ(*m.insert(7, 99), 70);

    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.contains(7));
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
}

TEST(FlatMap, GetOrDefault)
{
    FlatMap<int> m;
    int &v = m.getOrDefault(3);
    EXPECT_EQ(v, 0);
    v = 42;
    EXPECT_EQ(m.getOrDefault(3), 42);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseAndTake)
{
    FlatMap<int> m;
    for (Addr k = 0; k < 100; ++k)
        m.insert(k, static_cast<int>(k * 10));
    EXPECT_EQ(m.size(), 100u);

    EXPECT_TRUE(m.erase(50));
    EXPECT_FALSE(m.erase(50));
    EXPECT_FALSE(m.contains(50));
    EXPECT_EQ(m.size(), 99u);

    int out = -1;
    EXPECT_TRUE(m.take(51, out));
    EXPECT_EQ(out, 510);
    EXPECT_FALSE(m.take(51, out));
    EXPECT_EQ(m.size(), 98u);

    // Every untouched key is still reachable after the deletions.
    for (Addr k = 0; k < 100; ++k) {
        if (k == 50 || k == 51)
            continue;
        ASSERT_NE(m.find(k), nullptr) << "lost key " << k;
        EXPECT_EQ(*m.find(k), static_cast<int>(k * 10));
    }
}

TEST(FlatMap, Clear)
{
    FlatMap<int> m;
    for (Addr k = 0; k < 10; ++k)
        m.insert(k, 1);
    m.clear();
    EXPECT_TRUE(m.empty());
    for (Addr k = 0; k < 10; ++k)
        EXPECT_FALSE(m.contains(k));
    m.insert(3, 5);
    EXPECT_EQ(*m.find(3), 5);
}

// Randomized shadow test: a long interleaving of inserts, erases,
// takes and rehash-triggering growth must match std::unordered_map
// exactly.  This is the only exerciser of the backward-shift deletion
// over colliding probe chains, so it runs enough operations to wrap
// the table many times.
TEST(FlatMap, RandomizedShadowEquivalence)
{
    std::mt19937_64 rng(12345);
    FlatMap<std::uint64_t> m;
    std::unordered_map<Addr, std::uint64_t> ref;

    // Key universe deliberately small so probe chains collide and
    // deletions regularly shift later entries.
    std::uniform_int_distribution<Addr> key(0, 400);
    std::uniform_int_distribution<int> op(0, 9);

    for (int i = 0; i < 200'000; ++i) {
        const Addr k = key(rng);
        switch (op(rng)) {
          case 0:
          case 1:
          case 2:
          case 3: { // emplace
            const std::uint64_t v = rng();
            auto [p, ins] = m.emplace(k, v);
            auto [it, rins] = ref.emplace(k, v);
            ASSERT_EQ(ins, rins);
            ASSERT_EQ(*p, it->second);
            break;
          }
          case 4:
          case 5: { // erase
            ASSERT_EQ(m.erase(k), ref.erase(k) > 0);
            break;
          }
          case 6: { // take
            std::uint64_t out = 0;
            auto it = ref.find(k);
            if (it != ref.end()) {
                ASSERT_TRUE(m.take(k, out));
                ASSERT_EQ(out, it->second);
                ref.erase(it);
            } else {
                ASSERT_FALSE(m.take(k, out));
            }
            break;
          }
          default: { // find
            auto it = ref.find(k);
            const std::uint64_t *p = m.find(k);
            if (it == ref.end()) {
                ASSERT_EQ(p, nullptr);
            } else {
                ASSERT_NE(p, nullptr);
                ASSERT_EQ(*p, it->second);
            }
            break;
          }
        }
        ASSERT_EQ(m.size(), ref.size());
    }
}

} // namespace wastesim
