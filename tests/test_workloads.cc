/** Unit tests: benchmark trace generators (Table 4.2 properties). */

#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/workload.hh"

namespace wastesim
{

namespace
{

struct TraceStats
{
    std::size_t loads = 0, stores = 0, barriers = 0, epochs = 0;
    std::size_t workCycles = 0;
};

TraceStats
statsOf(const Workload &wl)
{
    TraceStats s;
    for (const auto &t : wl.traces()) {
        for (const auto &op : t) {
            switch (op.type) {
              case Op::Type::Load: ++s.loads; break;
              case Op::Type::Store: ++s.stores; break;
              case Op::Type::Barrier: ++s.barriers; break;
              case Op::Type::Epoch: ++s.epochs; break;
              case Op::Type::Work: s.workCycles += op.arg; break;
            }
        }
    }
    return s;
}

} // namespace

class AllBenchmarks : public ::testing::TestWithParam<BenchmarkName>
{
};

TEST_P(AllBenchmarks, WellFormed)
{
    auto wl = makeBenchmark(GetParam());
    ASSERT_EQ(wl->traces().size(), numTiles);

    // Every core has the same barrier sequence (no barrier skew).
    std::vector<std::vector<std::uint32_t>> barrier_seq(numTiles);
    for (CoreId c = 0; c < numTiles; ++c)
        for (const auto &op : wl->traces()[c])
            if (op.type == Op::Type::Barrier)
                barrier_seq[c].push_back(op.arg);
    for (CoreId c = 1; c < numTiles; ++c)
        EXPECT_EQ(barrier_seq[c], barrier_seq[0]) << "core " << c;

    // Exactly one epoch marker per core.
    for (CoreId c = 0; c < numTiles; ++c) {
        unsigned epochs = 0;
        for (const auto &op : wl->traces()[c])
            epochs += op.type == Op::Type::Epoch;
        EXPECT_EQ(epochs, 1u) << "core " << c;
    }

    // Barrier args reference real BarrierInfo entries.
    for (const auto &seq : barrier_seq)
        for (auto idx : seq)
            EXPECT_LT(idx, wl->barriers().size());

    // All accessed addresses fall inside declared regions (so the
    // DeNovo self-invalidation and Flex logic can reason about them)
    // or at least inside the allocated arena.
    const TraceStats s = statsOf(*wl);
    EXPECT_GT(s.loads, 0u);
    EXPECT_GT(s.stores, 0u);
    EXPECT_GT(s.barriers, 0u);
}

TEST_P(AllBenchmarks, AddressesAreWordAlignedAndRegionCovered)
{
    auto wl = makeBenchmark(GetParam());
    std::size_t uncovered = 0, total = 0;
    for (const auto &t : wl->traces()) {
        for (const auto &op : t) {
            if (op.type != Op::Type::Load && op.type != Op::Type::Store)
                continue;
            EXPECT_EQ(op.addr % bytesPerWord, 0u);
            ++total;
            if (!wl->regions().regionOf(op.addr))
                ++uncovered;
        }
    }
    // Every access lies in a declared region.
    EXPECT_EQ(uncovered, 0u) << "of " << total;
}

TEST_P(AllBenchmarks, DeterministicGeneration)
{
    auto a = makeBenchmark(GetParam());
    auto b = makeBenchmark(GetParam());
    ASSERT_EQ(a->totalOps(), b->totalOps());
    for (CoreId c = 0; c < numTiles; ++c) {
        const auto &ta = a->traces()[c];
        const auto &tb = b->traces()[c];
        ASSERT_EQ(ta.size(), tb.size());
        for (std::size_t i = 0; i < ta.size(); ++i) {
            EXPECT_EQ(ta[i].addr, tb[i].addr);
            EXPECT_EQ(static_cast<int>(ta[i].type),
                      static_cast<int>(tb[i].type));
        }
    }
}

TEST_P(AllBenchmarks, TraceSizeIsSweepable)
{
    auto wl = makeBenchmark(GetParam());
    // Keep the 54-run sweep tractable.
    EXPECT_LT(wl->totalOps(), 1'500'000u) << wl->name();
    EXPECT_GT(wl->totalOps(), 10'000u) << wl->name();
}

INSTANTIATE_TEST_SUITE_P(
    Table42, AllBenchmarks,
    ::testing::Values(BenchmarkName::Fluidanimate, BenchmarkName::LU,
                      BenchmarkName::FFT, BenchmarkName::Radix,
                      BenchmarkName::Barnes, BenchmarkName::KdTree),
    [](const auto &info) {
        std::string n = benchmarkName(info.param);
        for (auto &ch : n)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

TEST(Workloads, FlexRegionsWhereThePaperSaysSo)
{
    // Flex applies to barnes and kD-tree only (Section 5.2.1).
    for (BenchmarkName b : allBenchmarks) {
        auto wl = makeBenchmark(b);
        bool any_flex = false;
        for (std::size_t i = 0; i < wl->regions().numRegions(); ++i)
            any_flex |= wl->regions().region(
                static_cast<RegionId>(i)).flex;
        const bool expect_flex = b == BenchmarkName::Barnes ||
                                 b == BenchmarkName::KdTree;
        EXPECT_EQ(any_flex, expect_flex) << wl->name();
    }
}

TEST(Workloads, BypassRegionsWhereThePaperSaysSo)
{
    // Bypass applies to fluidanimate, FFT, radix, kD-tree.
    for (BenchmarkName b : allBenchmarks) {
        auto wl = makeBenchmark(b);
        bool any_bypass = false;
        for (std::size_t i = 0; i < wl->regions().numRegions(); ++i)
            any_bypass |= wl->regions().region(
                static_cast<RegionId>(i)).bypass;
        const bool expect = b == BenchmarkName::Fluidanimate ||
                            b == BenchmarkName::FFT ||
                            b == BenchmarkName::Radix ||
                            b == BenchmarkName::KdTree;
        EXPECT_EQ(any_bypass, expect) << wl->name();
    }
}

TEST(Workloads, RadixPermutationScattersWidely)
{
    auto wl = makeBenchmark(BenchmarkName::Radix);
    // Post-epoch stores from one core must touch far more distinct
    // lines than an L1 holds (the paper's 1024-bucket pathology).
    bool past_epoch = false;
    std::unordered_set<Addr> lines;
    for (const auto &op : wl->traces()[0]) {
        if (op.type == Op::Type::Epoch)
            past_epoch = true;
        if (past_epoch && op.type == Op::Type::Store)
            lines.insert(lineAddr(op.addr));
    }
    EXPECT_GT(lines.size(), 256u); // scaled L1 = 64 lines
}

TEST(Workloads, BarnesStructsStraddleLines)
{
    auto wl = makeBenchmark(BenchmarkName::Barnes);
    const Region *bodies = nullptr;
    for (std::size_t i = 0; i < wl->regions().numRegions(); ++i) {
        const Region &r =
            wl->regions().region(static_cast<RegionId>(i));
        if (r.name == "barnes.bodies")
            bodies = &r;
    }
    ASSERT_NE(bodies, nullptr);
    // 28-word stride: not a multiple of the 16-word line.
    EXPECT_NE(bodies->strideWords % wordsPerLine, 0u);
}

TEST(Workloads, ScaleGrowsInputs)
{
    auto s1 = makeBenchmark(BenchmarkName::FFT, 1);
    auto s2 = makeBenchmark(BenchmarkName::FFT, 2);
    EXPECT_GT(s2->totalOps(), s1->totalOps());
}

} // namespace wastesim
