/** Unit tests: the seeded scenario fuzzer (src/fuzz/) — generator
 *  determinism, the one-line codec, the invariant checker, the
 *  delta-debugging minimizer and the campaign driver (in-process and
 *  with crash-isolated CLI workers). */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "common/rng.hh"
#include "fuzz/campaign.hh"
#include "fuzz/invariants.hh"
#include "fuzz/minimizer.hh"
#include "fuzz/plant_bug.hh"
#include "fuzz/scenario.hh"
#include "system/runner.hh"

namespace wastesim
{

namespace
{

/** Temp path unique to this test binary run. */
std::string
tmpPath(const std::string &stem)
{
    return testing::TempDir() + "wastesim_fuzz_" + stem + "_" +
           std::to_string(getpid());
}

} // namespace

// --- common/rng.hh pinned draw sequence --------------------------------

// Scenario derivation is a pure function of the Rng stream, so the
// stream itself is part of the reproducibility contract: if these
// pinned draws ever change, every committed scenario line and corpus
// verdict silently re-rolls.  Regenerate corpus + pins together, on
// purpose, or not at all.
TEST(RngPins, Xoshiro256StarStarStreamIsFrozen)
{
    Rng r(42);
    const std::uint64_t expect[] = {
        1546998764402558742ULL,  6990951692964543102ULL,
        12544586762248559009ULL, 17057574109182124193ULL,
        18295552978065317476ULL, 14199186830065750584ULL,
        13267978908934200754ULL, 15679888225317814407ULL,
    };
    for (std::uint64_t e : expect)
        EXPECT_EQ(r.next(), e);

    Rng b(42);
    EXPECT_EQ(b.below(100), expect[0] % 100);

    // Default seed draws differently from seed 42 (seed expansion
    // actually feeds the state).
    Rng d;
    EXPECT_NE(d.next(), expect[0]);
}

TEST(RngPins, ScenarioSeedMixesCampaignAndIndex)
{
    // Neighbouring indices and seeds must land far apart.
    std::set<std::uint64_t> seen;
    for (std::uint64_t s = 1; s <= 4; ++s)
        for (std::uint64_t i = 0; i < 64; ++i)
            seen.insert(scenarioSeed(s, i));
    EXPECT_EQ(seen.size(), 4u * 64u);
    EXPECT_EQ(scenarioSeed(7, 3), scenarioSeed(7, 3));
}

// --- scenario codec ----------------------------------------------------

TEST(Scenario, EncodeParseEncodeIsByteIdenticalOverManySeeds)
{
    // Satellite: 1000 generated scenarios round-trip byte-identically
    // through the text codec.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const ScenarioGen gen(seed);
        for (std::uint64_t i = 0; i < 100; ++i) {
            const Scenario s = gen.at(i);
            ASSERT_TRUE(s.validate()) << s.encode();
            const std::string line = s.encode();
            Scenario back;
            std::string err;
            ASSERT_TRUE(Scenario::parse(line, back, &err))
                << line << "\n" << err;
            EXPECT_EQ(back.encode(), line);
            EXPECT_TRUE(back == s) << line;
        }
    }
}

TEST(Scenario, GeneratorIsAPureFunctionOfSeedAndIndex)
{
    const ScenarioGen a(123), b(123), c(124);
    EXPECT_TRUE(a.at(17) == b.at(17));
    // Draw order independence: at(17) after at(5) is still at(17).
    (void)a.at(5);
    EXPECT_TRUE(a.at(17) == b.at(17));
    EXPECT_FALSE(a.at(17) == c.at(17));
}

TEST(Scenario, GeneratorCoversTheSpace)
{
    const ScenarioGen gen(2026);
    std::set<std::string> protos;
    std::set<unsigned> meshes;
    bool saw_explicit_mc = false, saw_bypass = false;
    for (std::uint64_t i = 0; i < 200; ++i) {
        const Scenario s = gen.at(i);
        protos.insert(protocolName(s.protocol));
        meshes.insert(s.meshX * s.meshY);
        saw_explicit_mc = saw_explicit_mc || !s.mcTiles.empty();
        saw_bypass = saw_bypass || s.synth.bypassShared;
    }
    EXPECT_EQ(protos.size(), static_cast<std::size_t>(numProtocols));
    EXPECT_GE(meshes.size(), 8u);
    EXPECT_TRUE(saw_explicit_mc);
    EXPECT_TRUE(saw_bypass);
}

TEST(Scenario, ParseRejectsMalformedLines)
{
    Scenario s;
    std::string err;
    const std::string good = ScenarioGen(1).at(0).encode();

    EXPECT_FALSE(Scenario::parse("", s, &err));
    EXPECT_FALSE(Scenario::parse("wfz9 proto=MESI", s, &err));
    EXPECT_NE(err.find("scenario line"), std::string::npos);
    EXPECT_FALSE(Scenario::parse(good + " bogus=1", s, &err));
    EXPECT_FALSE(Scenario::parse(good + " mesh=4x4", s, &err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);

    // Values are validated, not just parsed: an out-of-range MC tile
    // and a fraction above 1 both fail with "invalid scenario".
    Scenario bad = ScenarioGen(1).at(0);
    bad.synth.readFraction = 1.5;
    EXPECT_FALSE(Scenario::parse(bad.encode(), s, &err));
    EXPECT_NE(err.find("invalid scenario"), std::string::npos);

    bad = ScenarioGen(1).at(0);
    bad.mcTiles = {255}; // a real tile id, just not on this mesh
    bad.numMcs = 0;
    EXPECT_FALSE(Scenario::parse(bad.encode(), s, &err));
    EXPECT_NE(err.find("outside the mesh"), std::string::npos) << err;
}

// --- invariant checker -------------------------------------------------

TEST(Invariants, HealthyRunsSatisfyEveryLaw)
{
    // A couple of fixed scenarios across protocol families.
    const ScenarioGen gen(99);
    for (std::uint64_t i = 0; i < 3; ++i) {
        const Scenario s = gen.at(i);
        std::string crc;
        const InvariantReport rep = checkScenario(
            s, /*max_ticks=*/500'000'000ULL, /*check_replay=*/true,
            &crc);
        EXPECT_TRUE(rep.ok()) << s.encode() << "\n" << rep.describe();
        EXPECT_EQ(crc.size(), 8u);
    }
}

TEST(Invariants, ViolationsCarryPathExpectedActualDelta)
{
    InvariantReport rep;
    rep.add("dram.chan-sum", "dram.reads", 100, 93, "test");
    ASSERT_FALSE(rep.ok());
    const Violation &v = rep.violations[0];
    EXPECT_DOUBLE_EQ(v.delta(), -7.0);
    const std::string d = v.describe();
    EXPECT_NE(d.find("dram.chan-sum"), std::string::npos);
    EXPECT_NE(d.find("expected=100"), std::string::npos);
    EXPECT_NE(d.find("actual=93"), std::string::npos);
    EXPECT_NE(d.find("delta=-7"), std::string::npos);
}

TEST(Invariants, ReplayComparisonNamesTheDivergingField)
{
    const Scenario s = ScenarioGen(5).at(0);
    std::unique_ptr<Workload> wl = s.makeWorkload();
    const RunResult a = runOne(s.protocol, *wl, s.simParams());
    RunResult b = a;
    b.dramReads += 1;
    InvariantReport rep;
    compareResults(a, b, rep);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.violations[0].invariant, "replay.determinism");
    EXPECT_EQ(rep.violations[0].path, "dram.reads");
}

// --- minimizer ---------------------------------------------------------

TEST(Minimizer, ShrinksToPredicateBoundaryDeterministically)
{
    Scenario big = ScenarioGen(11).at(3);
    big.meshX = big.meshY = 8;
    big.synth.opsPerCore = 512;
    big.synth.phases = 5;
    big.synth.sharingDegree = 16;
    ASSERT_TRUE(big.validate());

    // Synthetic bug: reproduces whenever there are >= 16 tiles and
    // >= 32 ops per core.  The minimizer must stop exactly there.
    const auto repro = [](const Scenario &s) {
        return s.meshX * s.meshY >= 16 && s.synth.opsPerCore >= 32;
    };
    ASSERT_TRUE(repro(big));

    MinimizeStats stats;
    const Scenario min = minimizeScenario(big, repro, &stats);
    EXPECT_TRUE(repro(min));
    EXPECT_TRUE(min.validate());
    // Mesh and ops sit on the boundary; everything else shrank to
    // its floor.
    EXPECT_GE(stats.testsRun, 1u);
    EXPECT_GE(countSmallerAxes(big, min), 2u);
    EXPECT_LT(min.meshX * min.meshY, 8u * 8u);
    EXPECT_GE(min.meshX * min.meshY, 16u);
    EXPECT_EQ(min.synth.opsPerCore, 32u);
    EXPECT_EQ(min.synth.phases, 1u);

    // Determinism: the same inputs minimize to the same scenario.
    const Scenario again = minimizeScenario(big, repro);
    EXPECT_TRUE(again == min);
}

TEST(Minimizer, KeepsScenariosValidWhileShrinkingMesh)
{
    Scenario s = ScenarioGen(21).at(1);
    s.meshX = s.meshY = 8;
    s.mcTiles = {60, 61, 62};    // only valid on the big mesh
    s.synth.sharingDegree = 64;
    ASSERT_TRUE(s.validate());

    const auto always = [](const Scenario &) { return true; };
    const Scenario min = minimizeScenario(s, always);
    EXPECT_TRUE(min.validate());
    EXPECT_EQ(min.meshX * min.meshY, 4u);
    EXPECT_LE(min.synth.sharingDegree, 4u);
}

// --- campaign ----------------------------------------------------------

TEST(Campaign, InProcessCampaignIsDeterministicAndClean)
{
    FuzzOptions opts;
    opts.seed = 1234;
    opts.runs = 6;
    opts.isolate = false;
    const FuzzReport a = FuzzCampaign(opts).run();
    const FuzzReport b = FuzzCampaign(opts).run();
    EXPECT_EQ(a.outcomes.size(), 6u);
    EXPECT_TRUE(a.clean()) << a.toText();
    EXPECT_EQ(a.toText(), b.toText());
    for (const FuzzOutcome &o : a.outcomes)
        EXPECT_EQ(o.resultCrc.size(), 8u);
}

TEST(Campaign, IsolatedWorkersProduceTheSameVerdictsAsInProcess)
{
    FuzzOptions opts;
    opts.seed = 77;
    opts.runs = 4;
    opts.program = WASTESIM_BINARY_DIR "/wastesim";
    const FuzzReport iso = FuzzCampaign(opts).run();
    opts.isolate = false;
    const FuzzReport inp = FuzzCampaign(opts).run();
    // Worker hand-off must not perturb anything: same scenarios, same
    // verdicts, same result fingerprints.
    EXPECT_EQ(iso.toText(), inp.toText());
    EXPECT_TRUE(iso.clean()) << iso.toText();
}

TEST(Campaign, CrashingWorkerIsCapturedNotFatal)
{
    FuzzOptions opts;
    opts.seed = 3;
    opts.runs = 2;
    // A worker binary that is not the CLI at all: exec succeeds,
    // output never appears, exit status is nonsense.
    opts.program = "/bin/false";
    const FuzzReport rep = FuzzCampaign(opts).run();
    ASSERT_EQ(rep.outcomes.size(), 2u);
    EXPECT_EQ(rep.crashes, 2u);
    for (const FuzzOutcome &o : rep.outcomes) {
        EXPECT_EQ(o.verdict, FuzzVerdict::Crash);
        EXPECT_FALSE(o.line.empty());
        EXPECT_FALSE(o.detail.empty());
    }
    // The campaign itself survived and reports the crashes.
    EXPECT_FALSE(rep.clean());
    EXPECT_NE(rep.toText().find("crashes 2"), std::string::npos);
}

TEST(Campaign, TimeBudgetStopsDrawingEarly)
{
    FuzzOptions opts;
    opts.seed = 5;
    opts.runs = 1000000;       // would run forever
    opts.timeBudgetSec = 0.2;
    opts.isolate = false;
    const FuzzReport rep = FuzzCampaign(opts).run();
    EXPECT_TRUE(rep.timeBudgetHit);
    EXPECT_LT(rep.outcomes.size(), 1000000u);
    EXPECT_NE(rep.toText().find("time-budget-hit"), std::string::npos);
}

// --- corpus files ------------------------------------------------------

TEST(Corpus, FilesRoundTripAndReplayVerifiesPins)
{
    const Scenario s = ScenarioGen(31).at(2);
    std::string crc;
    const InvariantReport rep =
        checkScenario(s, 500'000'000ULL, true, &crc);
    ASSERT_TRUE(rep.ok());

    CorpusEntry e;
    e.scenarioLine = s.encode();
    e.verdict = FuzzVerdict::Pass;
    e.resultCrc = crc;

    const std::string path = tmpPath("corpus") + ".scn";
    std::string err;
    ASSERT_TRUE(writeCorpusFile(path, e, &err)) << err;
    CorpusEntry back;
    ASSERT_TRUE(readCorpusFile(path, back, &err)) << err;
    EXPECT_EQ(back.scenarioLine, e.scenarioLine);
    EXPECT_EQ(back.verdict, e.verdict);
    EXPECT_EQ(back.resultCrc, e.resultCrc);

    EXPECT_TRUE(replayCorpusEntry(back, 500'000'000ULL, &err)) << err;

    // A wrong pin is a detected divergence, not a silent pass.
    back.resultCrc = "00000000";
    EXPECT_FALSE(replayCorpusEntry(back, 500'000'000ULL, &err));
    EXPECT_NE(err.find("CRC"), std::string::npos);
    std::remove(path.c_str());
}

// --- planted-bug self-test ---------------------------------------------

#ifdef WASTESIM_PLANT_BUG
// Compiled only in the -DWASTESIM_PLANT_BUG=ON self-test build: the
// deliberate NoC flit-accounting bug must be caught by the checker
// and shrunk by the minimizer.  This is the end-to-end proof that the
// fuzzer detects real conservation bugs.
TEST(PlantBug, CheckerCatchesAndMinimizerShrinksTheBug)
{
    setPlantBug(true);
    // Find a scenario that routes >= 2 hops (any mesh with a
    // diagonal); the generator's first draws include plenty.
    const ScenarioGen gen(42);
    Scenario failing;
    bool found = false;
    for (std::uint64_t i = 0; i < 10 && !found; ++i) {
        const Scenario s = gen.at(i);
        const InvariantReport rep =
            checkScenario(s, 500'000'000ULL, false);
        if (!rep.ok() &&
            rep.violations[0].invariant == "noc.link-conservation") {
            failing = s;
            found = true;
        }
    }
    ASSERT_TRUE(found);

    const auto repro = [](const Scenario &cand) {
        const InvariantReport r =
            checkScenario(cand, 500'000'000ULL, false);
        return !r.ok() &&
               r.violations[0].invariant == "noc.link-conservation";
    };
    MinimizeStats stats;
    const Scenario min = minimizeScenario(failing, repro, &stats, 64);
    EXPECT_TRUE(repro(min));
    // Acceptance: strictly smaller on at least two axes.
    EXPECT_GE(countSmallerAxes(failing, min), 2u)
        << failing.encode() << "\n -> " << min.encode();

    // Disarmed, the same scenario is healthy again.
    setPlantBug(false);
    EXPECT_TRUE(checkScenario(min, 500'000'000ULL, false).ok());
}
#else
TEST(PlantBug, DisabledBuildNeverTriggers)
{
    // In a normal build the hook constant-folds to "off".
    EXPECT_FALSE(plantBugEnabled());
}
#endif

} // namespace wastesim
