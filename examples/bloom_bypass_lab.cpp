/**
 * Bloom bypass lab: pokes at the "L2 Request Bypass" machinery
 * directly — shows the filter copy protocol in action, the
 * conservative behaviour before a copy arrives, and the effect on a
 * streaming workload.
 */

#include <cstdio>

#include "bloom/bloom_bank.hh"
#include "common/stats.hh"
#include "system/runner.hh"
#include "workload/workload.hh"

using namespace wastesim;

namespace
{

class StreamWorkload : public Workload
{
  public:
    explicit StreamWorkload(bool mark_bypass)
    {
        const Addr bytes = 256 * 1024;
        base_ = alloc(bytes);
        Region r;
        r.name = "stream";
        r.base = base_;
        r.size = bytes;
        r.bypass = mark_bypass;
        id_ = regions_.add(r);

        // Stream the region once per core slab per iteration.
        for (unsigned iter = 0; iter < 2; ++iter) {
            if (iter == 1)
                epochAll();
            const Addr per_core = bytes / numTiles;
            for (CoreId c = 0; c < numTiles; ++c)
                for (Addr off = 0; off < per_core;
                     off += bytesPerWord) {
                    load(c, base_ + c * per_core + off);
                }
            barrierAll({});
        }
    }

    std::string name() const override { return "stream"; }
    std::string inputDesc() const override { return "256 KB stream"; }

  private:
    Addr base_;
    RegionId id_;
};

} // namespace

int
main()
{
    // Part 1: the raw filter structures.
    std::printf("Part 1: filter mechanics\n");
    BloomBank bank;
    BloomShadow shadow;
    const Addr dirty_line = 1 << 22;
    bank.insert(dirty_line);

    bool need_copy = false;
    bool maybe = shadow.query(dirty_line, need_copy);
    std::printf("  before copy: maybe-dirty=%d need-copy=%d "
                "(conservative)\n",
                maybe, need_copy);

    // Copy every filter image (a real L1 copies them on demand).
    for (NodeId s = 0; s < numTiles; ++s)
        for (unsigned f = 0; f < bloomFiltersPerSlice; ++f)
            shadow.installImage(s, f, bank.image(f));
    maybe = shadow.query(dirty_line, need_copy);
    std::printf("  after copy:  maybe-dirty=%d (true positive)\n",
                maybe);
    maybe = shadow.query(dirty_line + 256 * 64, need_copy);
    std::printf("  clean line:  maybe-dirty=%d need-copy=%d\n\n",
                maybe, need_copy);

    // Part 2: end-to-end effect on a streaming workload.
    std::printf("Part 2: streaming workload, request bypass on/off\n");
    StreamWorkload plain(false), bypassed(true);

    TextTable t;
    t.header({"Config", "LD req ctl", "Bloom overhead",
              "Direct-to-MC", "L2 words fetched"});
    struct Case
    {
        const char *name;
        ProtocolName proto;
        StreamWorkload *wl;
    } cases[] = {
        {"DFlexL2 (no bypass)", ProtocolName::DFlexL2, &plain},
        {"DBypL2 (resp bypass)", ProtocolName::DBypL2, &bypassed},
        {"DBypFull (req bypass)", ProtocolName::DBypFull, &bypassed},
    };
    for (const auto &cs : cases) {
        const RunResult r = runOne(cs.proto, *cs.wl,
                                   SimParams::scaled());
        t.row({cs.name, fixed(r.traffic.ldReqCtl, 0),
               fixed(r.traffic.ohBloom, 0),
               std::to_string(r.bypassDirect),
               fixed(r.l2Waste.total(), 0)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
