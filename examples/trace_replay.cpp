/**
 * Trace capture/replay walkthrough: record a benchmark to a trace
 * file, load it back, and show that the replay reproduces the
 * original simulation exactly — the property that makes traces a
 * drop-in substitute for the built-in generators.
 *
 *   ./trace_replay [trace-file]
 */

#include <cstdio>

#include "system/runner.hh"
#include "trace/trace_workload.hh"

using namespace wastesim;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "trace_replay_example.trc";

    // 1. Build a benchmark and record it.
    auto original = makeBenchmark(BenchmarkName::FFT);
    TraceRecorder rec(path);
    if (!rec.record(*original)) {
        std::fprintf(stderr, "record failed: %s\n",
                     rec.error().c_str());
        return 1;
    }
    std::printf("recorded %s: %zu ops -> %s\n",
                original->name().c_str(), original->totalOps(),
                path.c_str());

    // 2. Load it back as a Workload.
    std::string err;
    auto replay = TraceWorkload::load(path, &err);
    if (!replay) {
        std::fprintf(stderr, "load failed: %s\n", err.c_str());
        return 1;
    }

    // 3. Same simulation, two sources.
    const SimParams params = SimParams::scaled();
    const RunResult a =
        runOne(ProtocolName::DBypFull, *original, params);
    const RunResult b = runOne(ProtocolName::DBypFull, *replay, params);

    std::printf("\n%-10s %12s %14s %10s\n", "source", "cycles",
                "flit-hops", "msgs");
    std::printf("%-10s %12llu %14.0f %10llu\n", "generator",
                static_cast<unsigned long long>(a.cycles),
                a.traffic.total(),
                static_cast<unsigned long long>(a.messages));
    std::printf("%-10s %12llu %14.0f %10llu\n", "replay",
                static_cast<unsigned long long>(b.cycles),
                b.traffic.total(),
                static_cast<unsigned long long>(b.messages));

    const bool identical = a.cycles == b.cycles &&
                           a.traffic.total() == b.traffic.total() &&
                           a.messages == b.messages;
    std::printf("\nreplay %s the generator run\n",
                identical ? "exactly reproduces" : "DIVERGES from");
    return identical ? 0 : 1;
}
