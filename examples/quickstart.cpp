/**
 * Quickstart: run one benchmark under two protocols and print the
 * headline numbers.
 *
 *   ./quickstart [benchmark] [scale]
 *
 * Benchmarks: fluidanimate LU FFT radix barnes kD-tree
 */

#include <cstdio>
#include <cstring>

#include "common/stats.hh"
#include "system/runner.hh"

using namespace wastesim;

int
main(int argc, char **argv)
{
    BenchmarkName bench = BenchmarkName::Barnes;
    if (argc > 1) {
        bool found = false;
        for (BenchmarkName b : allBenchmarks) {
            if (std::strcmp(argv[1], benchmarkName(b)) == 0) {
                bench = b;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "unknown benchmark '%s'; options:", argv[1]);
            for (BenchmarkName b : allBenchmarks)
                std::fprintf(stderr, " %s", benchmarkName(b));
            std::fprintf(stderr, "\n");
            return 1;
        }
    }
    const unsigned scale = argc > 2 ? std::atoi(argv[2]) : 1;

    auto wl = makeBenchmark(bench, scale);
    std::printf("benchmark: %s (%s), %zu trace ops\n\n",
                wl->name().c_str(), wl->inputDesc().c_str(),
                wl->totalOps());

    const RunResult mesi =
        runOne(ProtocolName::MESI, *wl, SimParams::scaled());
    const RunResult dn =
        runOne(ProtocolName::DBypFull, *wl, SimParams::scaled());

    TextTable t;
    t.header({"Metric", "MESI", "DBypFull", "vs MESI"});
    auto row = [&](const char *name, double a, double b) {
        t.row({name, fixed(a, 0), fixed(b, 0),
               pct(a > 0 ? 1.0 - b / a : 0.0)});
    };
    row("network traffic (flit-hops)", mesi.traffic.total(),
        dn.traffic.total());
    row("  load", mesi.traffic.load(), dn.traffic.load());
    row("  store", mesi.traffic.store(), dn.traffic.store());
    row("  writeback", mesi.traffic.writeback(),
        dn.traffic.writeback());
    row("  overhead", mesi.traffic.overhead(), dn.traffic.overhead());
    row("execution time (cycles)",
        static_cast<double>(mesi.cycles),
        static_cast<double>(dn.cycles));
    row("words fetched from memory",
        mesi.memWaste.total(), dn.memWaste.total());
    std::printf("%s\n", t.render().c_str());

    std::printf("DBypFull residual waste: %s of its data traffic\n",
                pct(dn.traffic.wasteData() / dn.traffic.total())
                    .c_str());
    return 0;
}
