/**
 * Traffic study: walk one benchmark through the full protocol ladder
 * (the paper's Section 5 progression) and show where each
 * optimization's savings come from.
 *
 *   ./traffic_study [benchmark]
 */

#include <cstdio>
#include <cstring>

#include "common/stats.hh"
#include "system/runner.hh"

using namespace wastesim;

int
main(int argc, char **argv)
{
    BenchmarkName bench = BenchmarkName::KdTree;
    if (argc > 1) {
        for (BenchmarkName b : allBenchmarks)
            if (std::strcmp(argv[1], benchmarkName(b)) == 0)
                bench = b;
    }

    auto wl = makeBenchmark(bench);
    std::printf("protocol ladder on %s (%s)\n\n", wl->name().c_str(),
                wl->inputDesc().c_str());

    TextTable t;
    t.header({"Protocol", "LD", "ST", "WB", "Overhead", "Total",
              "vs MESI", "Waste frac"});

    double mesi_total = 0;
    for (ProtocolName p : allProtocols) {
        const RunResult r = runOne(p, *wl, SimParams::scaled());
        const double total = r.traffic.total();
        if (p == ProtocolName::MESI)
            mesi_total = total;
        t.row({protocolName(p), fixed(r.traffic.load(), 0),
               fixed(r.traffic.store(), 0),
               fixed(r.traffic.writeback(), 0),
               fixed(r.traffic.overhead(), 0), fixed(total, 0),
               pct(total / mesi_total),
               pct(r.traffic.wasteData() / total)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Each row adds one optimization (Sections 3.1-3.3); "
                "'vs MESI' is the\nnormalized bar height of Fig. "
                "5.1a.\n");
    return 0;
}
