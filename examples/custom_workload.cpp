/**
 * Custom workload: shows the public API for writing your own
 * benchmark — regions (for self-invalidation), a Flex communication
 * region, and a bypass region — then compares protocols on it.
 *
 * The workload is a toy particle pipeline:
 *   phase 1: every core updates its own slab of particles
 *            (AoS structs, only some fields used -> Flex);
 *   phase 2: every core streams a big lookup table once (-> bypass);
 *   phase 3: neighbors read each other's particle positions.
 */

#include <cstdio>

#include "common/stats.hh"
#include "system/runner.hh"
#include "workload/workload.hh"

using namespace wastesim;

namespace
{

class ParticlePipeline : public Workload
{
  public:
    ParticlePipeline()
    {
        // 2048 particles x 24-word structs; phase uses 8 fields.
        nParticles_ = 2048;
        particleBase_ = alloc(nParticles_ * 24 * bytesPerWord);
        Region particles;
        particles.name = "particles";
        particles.base = particleBase_;
        particles.size = nParticles_ * 24 * bytesPerWord;
        particles.flex = true;
        particles.strideWords = 24;
        particles.usedFields = {0, 1, 2, 3, 4, 5, 6, 7};
        particlesId_ = regions_.add(particles);

        // A 512 KB lookup table, streamed once per iteration.
        tableWords_ = 128 * 1024;
        tableBase_ = alloc(tableWords_ * bytesPerWord);
        Region table;
        table.name = "lookup";
        table.base = tableBase_;
        table.size = tableWords_ * bytesPerWord;
        table.bypass = true;
        table.stream = true;
        tableId_ = regions_.add(table);

        generate(); // warm-up iteration
        epochAll();
        generate(); // measured iteration
    }

    std::string name() const override { return "particle-pipeline"; }
    std::string inputDesc() const override { return "custom demo"; }

  private:
    Addr
    field(unsigned p, unsigned f) const
    {
        return particleBase_ + (p * 24 + f) * bytesPerWord;
    }

    void
    generate()
    {
        const unsigned per_core = nParticles_ / numTiles;

        // Phase 1: update own particles (read pos, write vel).
        for (CoreId c = 0; c < numTiles; ++c) {
            for (unsigned i = 0; i < per_core; ++i) {
                const unsigned p = c * per_core + i;
                for (unsigned f = 0; f < 4; ++f)
                    load(c, field(p, f));
                for (unsigned f = 4; f < 8; ++f)
                    store(c, field(p, f));
                work(c, 4);
            }
        }
        barrierAll({particlesId_});

        // Phase 2: stream the lookup table (each core a slice).
        const Addr words_per_core = tableWords_ / numTiles;
        for (CoreId c = 0; c < numTiles; ++c) {
            for (Addr w = 0; w < words_per_core; w += 2)
                load(c, tableBase_ +
                            (c * words_per_core + w) * bytesPerWord);
        }
        barrierAll({});

        // Phase 3: read the next core's particle positions.
        for (CoreId c = 0; c < numTiles; ++c) {
            const CoreId n = (c + 1) % numTiles;
            for (unsigned i = 0; i < per_core; i += 4) {
                const unsigned p = n * per_core + i;
                for (unsigned f = 0; f < 4; ++f)
                    load(c, field(p, f));
                work(c, 2);
            }
        }
        barrierAll({particlesId_});
    }

    unsigned nParticles_;
    Addr particleBase_, tableBase_, tableWords_;
    RegionId particlesId_, tableId_;
};

} // namespace

int
main()
{
    ParticlePipeline wl;
    std::printf("custom workload '%s': %zu ops, %zu regions\n\n",
                wl.name().c_str(), wl.totalOps(),
                wl.regions().numRegions());

    TextTable t;
    t.header({"Protocol", "Traffic", "vs MESI", "Mem words",
              "Exec cycles"});
    double base = 0;
    for (ProtocolName p :
         {ProtocolName::MESI, ProtocolName::DeNovo,
          ProtocolName::DFlexL1, ProtocolName::DValidateL2,
          ProtocolName::DBypL2, ProtocolName::DBypFull}) {
        const RunResult r = runOne(p, wl, SimParams::scaled());
        if (p == ProtocolName::MESI)
            base = r.traffic.total();
        t.row({protocolName(p), fixed(r.traffic.total(), 0),
               pct(r.traffic.total() / base),
               fixed(r.memWaste.total(), 0),
               std::to_string(r.cycles)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
